#include "sim/disk.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace oi::sim {
namespace {

DiskParams test_params() {
  DiskParams params;
  params.seek_seconds = 0.004;
  params.rotational_seconds = 0.002;
  params.bandwidth = 100.0 * static_cast<double>(kMiB);
  params.strip_bytes = static_cast<std::size_t>(kMiB);
  return params;
}

TEST(DiskModel, ServiceTimeComponents) {
  const DiskParams params = test_params();
  EXPECT_DOUBLE_EQ(params.transfer_seconds(), 0.01);
  EXPECT_DOUBLE_EQ(params.positioning_seconds(), 0.006);
}

TEST(DiskModel, RandomRequestPaysPositioning) {
  Engine engine;
  Disk disk(engine, test_params(), 0);
  double completed_at = 0.0;
  disk.submit({.offset = 50, .is_write = false, .priority = Priority::kForeground, .bytes = 0,
               .on_complete = [&] { completed_at = engine.now(); }});
  engine.run();
  EXPECT_DOUBLE_EQ(completed_at, 0.016);  // seek+rot+transfer
  EXPECT_EQ(disk.completed_reads(), 1u);
}

TEST(DiskModel, SequentialRunSkipsPositioning) {
  Engine engine;
  Disk disk(engine, test_params(), 0);
  double last = 0.0;
  for (std::size_t o = 10; o < 14; ++o) {
    disk.submit({.offset = o, .is_write = false, .priority = Priority::kRebuild, .bytes = 0,
                 .on_complete = [&] { last = engine.now(); }});
  }
  engine.run();
  // First pays 0.016, the next three sequential pay 0.010 each.
  EXPECT_NEAR(last, 0.016 + 3 * 0.010, 1e-12);
}

TEST(DiskModel, NonAdjacentOffsetsPayPositioning) {
  Engine engine;
  Disk disk(engine, test_params(), 0);
  double last = 0.0;
  disk.submit({.offset = 10, .is_write = false, .priority = Priority::kRebuild, .bytes = 0,
               .on_complete = [&] { last = engine.now(); }});
  disk.submit({.offset = 12, .is_write = false, .priority = Priority::kRebuild, .bytes = 0,
               .on_complete = [&] { last = engine.now(); }});
  engine.run();
  EXPECT_NEAR(last, 2 * 0.016, 1e-12);
}

TEST(DiskModel, ForegroundPreemptsQueuedRebuild) {
  Engine engine;
  Disk disk(engine, test_params(), 0);
  std::vector<char> order;
  // Three rebuild requests queue up; a foreground request arrives while the
  // first is in service and must be served before rebuild #2.
  for (int i = 0; i < 3; ++i) {
    disk.submit({.offset = static_cast<std::size_t>(100 + 2 * i), .is_write = false,
                 .priority = Priority::kRebuild, .bytes = 0,
                 .on_complete = [&] { order.push_back('r'); }});
  }
  engine.schedule_at(0.001, [&] {
    disk.submit({.offset = 7, .is_write = false, .priority = Priority::kForeground, .bytes = 0,
                 .on_complete = [&] { order.push_back('f'); }});
  });
  engine.run();
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[0], 'r');
  EXPECT_EQ(order[1], 'f');
}

TEST(DiskModel, BusyAccountingAndUtilization) {
  Engine engine;
  Disk disk(engine, test_params(), 3);
  for (int i = 0; i < 5; ++i) {
    disk.submit({.offset = static_cast<std::size_t>(10 * i), .is_write = true, .priority = Priority::kRebuild, .bytes = 0, .on_complete = [] {}});
  }
  const double end = engine.run();
  EXPECT_NEAR(disk.busy_seconds(), 5 * 0.016, 1e-12);
  EXPECT_NEAR(disk.utilization(end), 1.0, 1e-9);  // saturated the whole run
  EXPECT_EQ(disk.completed_writes(), 5u);
  EXPECT_EQ(disk.id(), 3u);
}

TEST(DiskModel, CompletionCanSubmitFollowUp) {
  Engine engine;
  Disk disk(engine, test_params(), 0);
  bool second_done = false;
  disk.submit({.offset = 1, .is_write = false, .priority = Priority::kForeground, .bytes = 0,
               .on_complete = [&] {
                 disk.submit({.offset = 2, .is_write = true,
                              .priority = Priority::kForeground, .bytes = 0,
                              .on_complete = [&] { second_done = true; }});
               }});
  engine.run();
  EXPECT_TRUE(second_done);
  EXPECT_EQ(disk.completed_reads(), 1u);
  EXPECT_EQ(disk.completed_writes(), 1u);
}

TEST(DiskModel, RejectsMissingCallbackAndBadParams) {
  Engine engine;
  Disk disk(engine, test_params(), 0);
  EXPECT_THROW(disk.submit({.offset = 0, .is_write = false, .priority = Priority::kRebuild, .bytes = 0,
                            .on_complete = nullptr}),
               std::invalid_argument);
  DiskParams bad = test_params();
  bad.bandwidth = 0.0;
  EXPECT_THROW(Disk(engine, bad, 1), std::invalid_argument);
}

TEST(DiskModel, PerRequestBytesOverrideTransferTime) {
  Engine engine;
  Disk disk(engine, test_params(), 0);
  double completed_at = 0.0;
  // 64 KiB at 100 MiB/s = 0.625 ms transfer + 6 ms positioning.
  disk.submit({.offset = 9, .is_write = false, .priority = Priority::kForeground,
               .bytes = 64 * static_cast<std::size_t>(kKiB),
               .on_complete = [&] { completed_at = engine.now(); }});
  engine.run();
  EXPECT_NEAR(completed_at, 0.006 + 0.000625, 1e-12);
}

TEST(DiskModel, ZeroBytesMeansFullStrip) {
  Engine engine;
  Disk disk(engine, test_params(), 0);
  double completed_at = 0.0;
  disk.submit({.offset = 9, .is_write = false, .priority = Priority::kForeground,
               .bytes = 0, .on_complete = [&] { completed_at = engine.now(); }});
  engine.run();
  EXPECT_NEAR(completed_at, 0.016, 1e-12);
}

TEST(DiskModel, ElevatorServesRebuildQueueInOffsetOrder) {
  Engine engine;
  Disk disk(engine, test_params(), 0);
  std::vector<std::size_t> served;
  auto submit = [&](std::size_t offset) {
    disk.submit({.offset = offset, .is_write = false, .priority = Priority::kRebuild,
                 .bytes = 0, .on_complete = [&, offset] { served.push_back(offset); }});
  };
  // First request starts service immediately; the rest queue and must come
  // out in ascending offset order regardless of submission order.
  submit(50);
  submit(90);
  submit(60);
  submit(70);
  submit(80);
  engine.run();
  EXPECT_EQ(served, (std::vector<std::size_t>{50, 60, 70, 80, 90}));
}

TEST(DiskModel, ElevatorWrapsToSmallestOffset) {
  Engine engine;
  Disk disk(engine, test_params(), 0);
  std::vector<std::size_t> served;
  auto submit = [&](std::size_t offset) {
    disk.submit({.offset = offset, .is_write = false, .priority = Priority::kRebuild,
                 .bytes = 0, .on_complete = [&, offset] { served.push_back(offset); }});
  };
  submit(100);  // head ends at 100
  submit(10);   // behind the head
  submit(120);  // ahead
  engine.run();
  EXPECT_EQ(served, (std::vector<std::size_t>{100, 120, 10}));
}

TEST(DiskModel, ElevatorMakesConsecutiveRebuildSequential) {
  Engine engine;
  Disk disk(engine, test_params(), 0);
  double end = 0.0;
  for (std::size_t o : {23, 21, 24, 20, 22}) {
    disk.submit({.offset = o, .is_write = false, .priority = Priority::kRebuild,
                 .bytes = 0, .on_complete = [&] { end = engine.now(); }});
  }
  engine.run();
  // 23 (position+transfer), 24 sequential, wrap to 20 (position), then 21
  // and 22 sequential: two positionings instead of five.
  EXPECT_NEAR(end, 2 * 0.016 + 3 * 0.010, 1e-12);
}

}  // namespace
}  // namespace oi::sim
