// The analytic models must agree with the constructed layouts and the
// simulator -- each validates the other.
#include "layout/model.hpp"

#include <gtest/gtest.h>

#include "bibd/constructions.hpp"
#include "layout/analysis.hpp"
#include "layout/oi_raid.hpp"
#include "layout/parity_declustering.hpp"
#include "layout/raid5.hpp"
#include "layout/raid50.hpp"
#include "sim/rebuild.hpp"

namespace oi::layout {
namespace {

struct ModelCase {
  std::string label;
  std::size_t v, k, m;
};

class OiModelVsLayout : public ::testing::TestWithParam<ModelCase> {};

TEST_P(OiModelVsLayout, ReadVolumeMatchesConstructedLayout) {
  const auto& c = GetParam();
  const OiRaidModel model{c.v, c.k, c.m};
  auto design = c.v == 7 && c.k == 3 ? bibd::fano()
               : c.v == 13 && c.k == 4 ? bibd::projective_plane(3)
                                       : bibd::bose_steiner_triple(c.v);
  const std::size_t h = c.m * (c.m - 1) * (c.m - 1);
  const OiRaidLayout layout({design, c.m, h});
  const auto plan = layout.recovery_plan({0});
  const auto reads = per_disk_read_load(layout, {0}, *plan);
  double total = 0.0;
  for (double x : reads) total += x;
  const double capacities = total / static_cast<double>(layout.strips_per_disk());
  EXPECT_NEAR(capacities, model.rebuild_read_capacities(), 1e-9) << layout.name();
}

TEST_P(OiModelVsLayout, PerDiskReadMatchesMeanOfConstructedLayout) {
  const auto& c = GetParam();
  const OiRaidModel model{c.v, c.k, c.m};
  auto design = c.v == 7 && c.k == 3 ? bibd::fano()
               : c.v == 13 && c.k == 4 ? bibd::projective_plane(3)
                                       : bibd::bose_steiner_triple(c.v);
  const std::size_t h = c.m * (c.m - 1) * (c.m - 1);
  const OiRaidLayout layout({design, c.m, h});
  const auto plan = layout.recovery_plan({0});
  const auto reads = per_disk_read_load(layout, {0}, *plan);
  double mean_outside = 0.0;
  std::size_t outside = 0;
  for (std::size_t d = c.m; d < reads.size(); ++d) {
    mean_outside += reads[d];
    ++outside;
  }
  mean_outside /= static_cast<double>(outside) *
                  static_cast<double>(layout.strips_per_disk());
  EXPECT_NEAR(mean_outside, model.per_disk_read_fraction(), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Geometries, OiModelVsLayout,
                         ::testing::Values(ModelCase{"fano_m3", 7, 3, 3},
                                           ModelCase{"fano_m4", 7, 3, 4},
                                           ModelCase{"sts15_m3", 15, 3, 3},
                                           ModelCase{"pg3_m4", 13, 4, 4}),
                         [](const auto& info) { return info.param.label; });

TEST(ModelVsSimulation, OiRaidRebuildTimeWithinQueueingSlack) {
  const OiRaidModel model{7, 3, 3};
  const std::size_t h = 12;
  const OiRaidLayout layout({bibd::fano(), 3, h});
  sim::SimConfig config;
  config.disk.strip_bytes = 4 * static_cast<std::size_t>(kMiB);
  config.max_inflight_steps = 1'000'000;
  const auto result = sim::simulate(layout, {0}, config);
  const double predicted = rebuild_seconds_from_fraction(
      model.busiest_disk_fraction(), layout.strips_per_disk(),
      config.disk.transfer_seconds());
  // The simulator adds positioning and queueing the bound ignores; the
  // model must be a lower bound and within ~60% of the measurement.
  EXPECT_LE(predicted, result.rebuild_seconds);
  EXPECT_GT(predicted, result.rebuild_seconds * 0.4);
}

TEST(ModelVsSimulation, Raid5AndRaid50MatchClosely) {
  const std::size_t strips = 120;
  sim::SimConfig config;
  config.disk.strip_bytes = 4 * static_cast<std::size_t>(kMiB);
  config.max_inflight_steps = 1'000'000;
  {
    Raid5Layout layout(21, strips);
    const auto result = sim::simulate(layout, {0}, config);
    const double predicted = rebuild_seconds_from_fraction(
        raid5_busiest_fraction(21), strips, config.disk.transfer_seconds());
    EXPECT_NEAR(result.rebuild_seconds / predicted, 1.0, 0.15);
  }
  {
    Raid50Layout layout(7, 3, strips);
    const auto result = sim::simulate(layout, {0}, config);
    const double predicted = rebuild_seconds_from_fraction(
        raid50_busiest_fraction(7, 3), strips, config.disk.transfer_seconds());
    EXPECT_NEAR(result.rebuild_seconds / predicted, 1.0, 0.15);
  }
}

TEST(ModelProperties, SpeedupGrowsWithGeometry) {
  const OiRaidModel small{7, 3, 3};
  const OiRaidModel mid{13, 4, 4};
  const OiRaidModel large{31, 6, 6};
  EXPECT_GT(small.speedup_vs_raid5(), 3.0);
  EXPECT_GT(mid.speedup_vs_raid5(), small.speedup_vs_raid5());
  EXPECT_GT(large.speedup_vs_raid5(), mid.speedup_vs_raid5());
}

TEST(ModelProperties, PdBeatsRaid5ButNotOiReliability) {
  // PD's busiest fraction shrinks with n at fixed k.
  EXPECT_LT(pd_busiest_fraction(45, 3), pd_busiest_fraction(21, 3));
  EXPECT_LT(pd_busiest_fraction(21, 3), raid5_busiest_fraction(21));
  EXPECT_GT(raid50_busiest_fraction(7, 3), 1.0);
}

TEST(ModelProperties, Validation) {
  EXPECT_THROW(raid5_busiest_fraction(1), std::invalid_argument);
  EXPECT_THROW(pd_busiest_fraction(3, 3), std::invalid_argument);
  EXPECT_THROW(rebuild_seconds_from_fraction(0.0, 10, 1.0), std::invalid_argument);
  OiRaidModel bad{8, 3, 3};  // (v-1) % (k-1) != 0
  EXPECT_THROW(bad.rebuild_read_capacities(), std::invalid_argument);
}

}  // namespace
}  // namespace oi::layout
