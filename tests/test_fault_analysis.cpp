#include "core/fault_analysis.hpp"

#include <gtest/gtest.h>

#include "bibd/constructions.hpp"
#include "layout/oi_raid.hpp"
#include "layout/parity_declustering.hpp"
#include "layout/raid5.hpp"
#include "layout/raid50.hpp"

namespace oi::core {
namespace {

layout::OiRaidLayout compact_oi() {
  return layout::OiRaidLayout(layout::OiRaidParams{bibd::fano(), 3, 2});
}

TEST(PeelVsExact, AgreeOnRaid5) {
  layout::Raid5Layout layout(5, 6);
  for (std::size_t d = 0; d < 5; ++d) {
    EXPECT_TRUE(peel_recoverable(layout, {d}));
    EXPECT_TRUE(exact_recoverable(layout, {d}));
  }
  EXPECT_FALSE(peel_recoverable(layout, {0, 1}));
  EXPECT_FALSE(exact_recoverable(layout, {0, 1}));
}

TEST(PeelVsExact, ExactNeverWeakerThanPeel) {
  const auto layout = compact_oi();
  Rng rng(1);
  for (int trial = 0; trial < 200; ++trial) {
    const auto pattern = rng.sample_without_replacement(layout.disks(), 4);
    if (peel_recoverable(layout, pattern)) {
      EXPECT_TRUE(exact_recoverable(layout, pattern));
    }
  }
}

TEST(GuaranteedTolerance, MatchesSchemeClaims) {
  layout::Raid5Layout raid5(6, 4);
  EXPECT_EQ(guaranteed_tolerance(raid5, 3), 1u);

  layout::Raid50Layout raid50(3, 3, 4);
  EXPECT_EQ(guaranteed_tolerance(raid50, 3), 1u);

  layout::ParityDeclusteredLayout pd(bibd::fano(), 1);
  EXPECT_EQ(guaranteed_tolerance(pd, 3), 1u);

  // The headline claim, verified by full enumeration of 1-, 2-, 3- and
  // (first failing) 4-disk patterns.
  EXPECT_EQ(guaranteed_tolerance(compact_oi(), 4), 3u);
}

TEST(SweepPatterns, ExhaustiveWhenSmall) {
  const auto layout = compact_oi();
  Rng rng(2);
  const auto summary = sweep_failure_patterns(layout, 2, 100000, rng);
  EXPECT_TRUE(summary.exhaustive);
  EXPECT_EQ(summary.patterns_tested, 21u * 20u / 2u);
  EXPECT_EQ(summary.peel_recoverable, summary.patterns_tested);
  EXPECT_DOUBLE_EQ(summary.peel_fraction(), 1.0);
  EXPECT_DOUBLE_EQ(summary.exact_fraction(), 1.0);
}

TEST(SweepPatterns, SampledWhenLarge) {
  const auto layout = compact_oi();
  Rng rng(3);
  const auto summary = sweep_failure_patterns(layout, 5, 300, rng);
  EXPECT_FALSE(summary.exhaustive);
  EXPECT_EQ(summary.patterns_tested, 300u);
  // Five failures: some survive, some do not.
  EXPECT_GT(summary.peel_recoverable, 0u);
  EXPECT_LT(summary.peel_recoverable, summary.patterns_tested);
  EXPECT_GE(summary.exact_recoverable, summary.peel_recoverable);
}

TEST(SweepPatterns, FourFailureSurvivalIsSubstantial) {
  const auto layout = compact_oi();
  Rng rng(4);
  const auto summary = sweep_failure_patterns(layout, 4, 100000, rng);
  EXPECT_TRUE(summary.exhaustive);
  // "At least 3": not all 4-patterns survive...
  EXPECT_LT(summary.peel_fraction(), 1.0);
  // ...but the majority do (that is what the reliability model exploits).
  EXPECT_GT(summary.peel_fraction(), 0.5);
}

TEST(SweepPatterns, Validation) {
  const auto layout = compact_oi();
  Rng rng(5);
  EXPECT_THROW(sweep_failure_patterns(layout, 0, 10, rng), std::invalid_argument);
  EXPECT_THROW(sweep_failure_patterns(layout, 99, 10, rng), std::invalid_argument);
  EXPECT_THROW(sweep_failure_patterns(layout, 1, 0, rng), std::invalid_argument);
}

TEST(ExactChecker, HandlesEmptyAndValidatesIds) {
  const auto layout = compact_oi();
  EXPECT_TRUE(exact_recoverable(layout, {}));
  EXPECT_THROW(exact_recoverable(layout, {999}), std::invalid_argument);
}

}  // namespace
}  // namespace oi::core
