#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace oi {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, ZeroSeedWorks) {
  Rng rng(0);
  std::set<std::uint64_t> values;
  for (int i = 0; i < 100; ++i) values.insert(rng());
  EXPECT_GT(values.size(), 95u);  // no degenerate all-zero state
}

TEST(Rng, UniformU64RespectsBound) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.uniform_u64(bound), bound);
  }
}

TEST(Rng, UniformU64RejectsZeroBound) {
  Rng rng(7);
  EXPECT_THROW(rng.uniform_u64(0), std::invalid_argument);
}

TEST(Rng, UniformU64CoversAllResidues) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_u64(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, UniformIntInclusiveRange) {
  Rng rng(3);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto x = rng.uniform_int(-2, 2);
    EXPECT_GE(x, -2);
    EXPECT_LE(x, 2);
    saw_lo |= x == -2;
    saw_hi |= x == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, Uniform01InHalfOpenRange) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform01();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(13);
  const double rate = 0.5;
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(rate);
  EXPECT_NEAR(sum / n, 1.0 / rate, 0.05);
}

TEST(Rng, ZigguratExponentialMomentsAndTail) {
  Rng rng(123);
  const int n = 1'000'000;
  double sum = 0.0;
  double sum2 = 0.0;
  int tail = 0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.exponential_std();
    ASSERT_GE(x, 0.0);
    sum += x;
    sum2 += x * x;
    if (x > 7.0) ++tail;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  // Exp(1): mean = 1, variance = 1.
  EXPECT_NEAR(mean, 1.0, 0.01);
  EXPECT_NEAR(var, 1.0, 0.05);
  // Tail mass beyond x = 7 (close to the ziggurat's base layer boundary at
  // ~7.697, where the algorithm switches to the analytic tail): e^-7 of all
  // draws. A wrong tail handler misses this by orders of magnitude.
  const double expected_tail = std::exp(-7.0) * n;  // ~912
  EXPECT_NEAR(static_cast<double>(tail), expected_tail, 0.25 * expected_tail);
}

TEST(Rng, ZigguratExponentialCdfMatches) {
  // Empirical CDF against 1 - e^-x at several points, within 5 standard
  // errors -- catches layer-table mistakes that leave the moments intact.
  Rng rng(7);
  const int n = 500'000;
  const double points[] = {0.1, 0.5, 1.0, 2.5, 5.0};
  int counts[5] = {0, 0, 0, 0, 0};
  for (int i = 0; i < n; ++i) {
    const double x = rng.exponential_std();
    for (int j = 0; j < 5; ++j) {
      if (x <= points[j]) ++counts[j];
    }
  }
  for (int j = 0; j < 5; ++j) {
    const double expected = 1.0 - std::exp(-points[j]);
    const double se = std::sqrt(expected * (1.0 - expected) / n);
    EXPECT_NEAR(static_cast<double>(counts[j]) / n, expected, 5.0 * se)
        << "x=" << points[j];
  }
}

TEST(Rng, ExponentialFastScalesRate) {
  Rng rng(31);
  const double rate = 0.25;
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.exponential_fast(rate);
  EXPECT_NEAR(sum / n, 1.0 / rate, 0.1);
}

TEST(Rng, WeibullShapeOneIsExponential) {
  Rng rng(17);
  const double scale = 3.0;
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.weibull(1.0, scale);
  EXPECT_NEAR(sum / n, scale, 0.1);
}

TEST(Rng, NormalMoments) {
  Rng rng(19);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(2.0, 3.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.05);
  EXPECT_NEAR(var, 9.0, 0.2);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(23);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, SampleWithoutReplacementIsDistinctAndSorted) {
  Rng rng(29);
  for (int trial = 0; trial < 100; ++trial) {
    const auto sample = rng.sample_without_replacement(50, 10);
    ASSERT_EQ(sample.size(), 10u);
    EXPECT_TRUE(std::is_sorted(sample.begin(), sample.end()));
    EXPECT_EQ(std::set<std::size_t>(sample.begin(), sample.end()).size(), 10u);
    for (auto x : sample) EXPECT_LT(x, 50u);
  }
}

TEST(Rng, SampleWholePopulation) {
  Rng rng(31);
  const auto sample = rng.sample_without_replacement(5, 5);
  EXPECT_EQ(sample, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(Rng, SampleRejectsOversizedRequest) {
  Rng rng(31);
  EXPECT_THROW(rng.sample_without_replacement(3, 4), std::invalid_argument);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(37);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto shuffled = v;
  rng.shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Rng, SplitStreamsAreIndependent) {
  Rng a(41);
  Rng b = a.split();
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Zipf, Theta0IsUniform) {
  Rng rng(43);
  ZipfSampler zipf(10, 0.0);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[zipf(rng)];
  for (int c : counts) EXPECT_NEAR(static_cast<double>(c) / n, 0.1, 0.02);
}

TEST(Zipf, SkewFavorsLowRanks) {
  Rng rng(47);
  ZipfSampler zipf(1000, 0.99);
  std::vector<int> counts(1000, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[zipf(rng)];
  EXPECT_GT(counts[0], counts[99] * 5);
  // Top 10% of items should absorb well over half the accesses at 0.99.
  int head = 0;
  for (int i = 0; i < 100; ++i) head += counts[i];
  EXPECT_GT(head, n / 2);
}

TEST(Zipf, StaysInSupport) {
  Rng rng(53);
  ZipfSampler zipf(17, 1.2);
  for (int i = 0; i < 20000; ++i) EXPECT_LT(zipf(rng), 17u);
}

TEST(Zipf, SingletonSupport) {
  Rng rng(59);
  ZipfSampler zipf(1, 0.8);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(zipf(rng), 0u);
}

TEST(Zipf, RejectsThetaOne) {
  EXPECT_THROW(ZipfSampler(10, 1.0), std::invalid_argument);
}

}  // namespace
}  // namespace oi
