// Stateful fuzz: random interleavings of the whole Array API -- writes
// (healthy and degraded), disk failures, rebuilds, silent corruption and
// scrub-repair -- checked after every step against a golden in-memory model.
// Seeds are fixed, so failures replay deterministically; the operation log
// prints on assertion failure for triage.
//
// The BackendEquivalence suite replays the same operation sequence against a
// MemBlockStore-backed and a FileBlockStore-backed array in lockstep and
// demands *identical* observable behavior -- reads, IoCounters, rebuild
// reports, scrub verdicts, and final physical bytes -- which is the gate for
// the claim that the file backend changes where bytes live, not what the
// array does.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdlib>
#include <map>
#include <memory>
#include <sstream>

#include "bibd/constructions.hpp"
#include "core/array.hpp"
#include "layout/oi_raid.hpp"
#include "layout/raid51.hpp"
#include "util/rng.hpp"

namespace oi::core {
namespace {

constexpr std::size_t kStripBytes = 16;

struct FuzzCase {
  std::string label;
  std::function<std::shared_ptr<const layout::Layout>()> make;
  std::uint64_t seed;
};

class ArrayFuzz : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(ArrayFuzz, RandomOperationSequencesPreserveData) {
  const auto layout = GetParam().make();
  Array array(layout, kStripBytes);
  Rng rng(GetParam().seed);
  std::map<std::size_t, std::vector<std::uint8_t>> golden;
  std::ostringstream log;

  auto random_strip = [&] {
    std::vector<std::uint8_t> data(kStripBytes);
    for (auto& b : data) b = static_cast<std::uint8_t>(rng.uniform_u64(256));
    return data;
  };

  const std::size_t tolerance = layout->fault_tolerance();
  for (int step = 0; step < 400; ++step) {
    const auto dice = rng.uniform_u64(100);
    if (dice < 55) {
      // Write (healthy or degraded -- reconstruct-on-write handles both).
      const std::size_t logical = rng.uniform_u64(array.capacity_strips());
      auto data = random_strip();
      log << step << ": write " << logical << "\n";
      array.write(logical, data);
      golden[logical] = std::move(data);
    } else if (dice < 70) {
      // Fail a disk, staying within the guaranteed tolerance.
      if (array.failed_disks().size() < tolerance) {
        const std::size_t disk = rng.uniform_u64(layout->disks());
        log << step << ": fail disk " << disk << "\n";
        array.fail_disk(disk);
        ASSERT_TRUE(array.recoverable()) << log.str();
      }
    } else if (dice < 80) {
      // Rebuild everything.
      if (!array.failed_disks().empty()) {
        log << step << ": rebuild\n";
        array.rebuild();
        ASSERT_EQ(array.scrub(), "") << log.str();
      }
    } else if (dice < 90) {
      // Silent corruption on a healthy strip, then immediate repair. The
      // corrupt strip is effectively one more erasure, so stay within the
      // tolerance: at the limit, repair may legitimately be impossible
      // until a rebuild completes.
      const layout::StripLoc victim{rng.uniform_u64(layout->disks()),
                                    rng.uniform_u64(layout->strips_per_disk())};
      if (array.failed_disks().size() + 1 <= tolerance &&
          !array.is_failed(victim.disk)) {
        log << step << ": corrupt+repair disk " << victim.disk << " offset "
            << victim.offset << "\n";
        array.inject_corruption(victim, 0x3C);
        ASSERT_TRUE(array.repair_strip(victim)) << log.str();
      }
    } else {
      // Random readback of a few golden strips.
      for (int i = 0; i < 3 && !golden.empty(); ++i) {
        auto it = golden.begin();
        std::advance(it, static_cast<long>(rng.uniform_u64(golden.size())));
        ASSERT_EQ(array.read(it->first), it->second)
            << log.str() << "readback of " << it->first << " at step " << step;
      }
    }
  }

  // Final settle: rebuild and verify every byte ever written.
  if (!array.failed_disks().empty()) array.rebuild();
  ASSERT_EQ(array.scrub(), "") << log.str();
  for (const auto& [logical, data] : golden) {
    ASSERT_EQ(array.read(logical), data) << log.str() << "final logical " << logical;
  }
}

class BackendEquivalence : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(BackendEquivalence, MemAndFileBackendsBehaveIdentically) {
  const auto layout = GetParam().make();
  char tmpl[] = "/tmp/oi-fuzz-XXXXXX";
  ASSERT_NE(::mkdtemp(tmpl), nullptr);
  const std::string dir = std::string(tmpl) + "/disks";

  Array mem(layout, kStripBytes);
  Array file(layout,
             std::make_unique<FileBlockStore>(dir, layout->disks(),
                                              layout->strips_per_disk(), kStripBytes));
  Rng rng(GetParam().seed);
  std::ostringstream log;

  auto random_strip = [&] {
    std::vector<std::uint8_t> data(kStripBytes);
    for (auto& b : data) b = static_cast<std::uint8_t>(rng.uniform_u64(256));
    return data;
  };

  const std::size_t tolerance = layout->fault_tolerance();
  for (int step = 0; step < 200; ++step) {
    const auto dice = rng.uniform_u64(100);
    if (dice < 50) {
      const std::size_t logical = rng.uniform_u64(mem.capacity_strips());
      const auto data = random_strip();
      log << step << ": write " << logical << "\n";
      mem.write(logical, data);
      file.write(logical, data);
    } else if (dice < 62) {
      if (mem.failed_disks().size() < tolerance) {
        const std::size_t disk = rng.uniform_u64(layout->disks());
        log << step << ": fail disk " << disk << "\n";
        mem.fail_disk(disk);
        file.fail_disk(disk);
      }
    } else if (dice < 72) {
      if (!mem.failed_disks().empty()) {
        // Stepwise on both, advancing by the same random step counts, so the
        // equivalence also covers the watermark machinery mid-rebuild.
        log << step << ": stepwise rebuild\n";
        ASSERT_EQ(mem.rebuild_begin(), file.rebuild_begin()) << log.str();
        while (mem.rebuild_active()) {
          const std::size_t burst = 1 + rng.uniform_u64(7);
          ASSERT_EQ(mem.rebuild_step(burst), file.rebuild_step(burst)) << log.str();
          ASSERT_EQ(mem.rebuild_watermark(), file.rebuild_watermark()) << log.str();
        }
        ASSERT_FALSE(file.rebuild_active()) << log.str();
      }
    } else if (dice < 82) {
      if (!mem.failed_disks().empty()) {
        log << step << ": rebuild\n";
        ASSERT_EQ(mem.rebuild(), file.rebuild()) << log.str();
      }
    } else {
      const std::size_t logical = rng.uniform_u64(mem.capacity_strips());
      log << step << ": read " << logical << "\n";
      ASSERT_EQ(mem.read(logical), file.read(logical)) << log.str();
    }
    ASSERT_EQ(mem.counters(), file.counters()) << log.str() << "diverged at step "
                                               << step;
  }

  ASSERT_EQ(mem.scrub(), file.scrub()) << log.str();
  // Physical equality, strip by strip, including poisoned/lost strips.
  for (std::size_t d = 0; d < layout->disks(); ++d) {
    for (std::size_t o = 0; o < layout->strips_per_disk(); ++o) {
      ASSERT_EQ(mem.peek({d, o}), file.peek({d, o}))
          << log.str() << "physical strip (" << d << ", " << o << ")";
    }
  }
}

std::shared_ptr<const layout::Layout> fuzz_oi() {
  return std::make_shared<layout::OiRaidLayout>(
      layout::OiRaidParams{bibd::fano(), 3, 4});
}

std::shared_ptr<const layout::Layout> fuzz_oi_pg3() {
  return std::make_shared<layout::OiRaidLayout>(
      layout::OiRaidParams{bibd::projective_plane(3), 4, 6});
}

std::shared_ptr<const layout::Layout> fuzz_raid51() {
  return std::make_shared<layout::Raid51Layout>(4, 10);
}

std::shared_ptr<const layout::Layout> fuzz_oi_mirrored() {
  // m=2: inner layer degenerates to mirrored pairs.
  return std::make_shared<layout::OiRaidLayout>(
      layout::OiRaidParams{bibd::affine_plane(3), 2, 4});
}

std::shared_ptr<const layout::Layout> fuzz_oi_noskew() {
  return std::make_shared<layout::OiRaidLayout>(
      layout::OiRaidParams{bibd::fano(), 3, 6, /*skew=*/false});
}

INSTANTIATE_TEST_SUITE_P(
    Runs, ArrayFuzz,
    ::testing::Values(FuzzCase{"oi_fano_s1", fuzz_oi, 1},
                      FuzzCase{"oi_fano_s2", fuzz_oi, 2},
                      FuzzCase{"oi_fano_s3", fuzz_oi, 3},
                      FuzzCase{"oi_fano_s4", fuzz_oi, 4},
                      FuzzCase{"oi_pg3_s5", fuzz_oi_pg3, 5},
                      FuzzCase{"oi_pg3_s6", fuzz_oi_pg3, 6},
                      FuzzCase{"raid51_s7", fuzz_raid51, 7},
                      FuzzCase{"raid51_s8", fuzz_raid51, 8},
                      FuzzCase{"oi_m2_s9", fuzz_oi_mirrored, 9},
                      FuzzCase{"oi_m2_s10", fuzz_oi_mirrored, 10},
                      FuzzCase{"oi_noskew_s11", fuzz_oi_noskew, 11},
                      FuzzCase{"oi_fano_s12", fuzz_oi, 12},
                      FuzzCase{"oi_fano_s13", fuzz_oi, 13},
                      FuzzCase{"oi_pg3_s14", fuzz_oi_pg3, 14}),
    [](const auto& info) { return info.param.label; });

INSTANTIATE_TEST_SUITE_P(
    Backends, BackendEquivalence,
    ::testing::Values(FuzzCase{"oi_fano_s21", fuzz_oi, 21},
                      FuzzCase{"oi_fano_s22", fuzz_oi, 22},
                      FuzzCase{"oi_pg3_s23", fuzz_oi_pg3, 23},
                      FuzzCase{"raid51_s24", fuzz_raid51, 24},
                      FuzzCase{"oi_m2_s25", fuzz_oi_mirrored, 25},
                      FuzzCase{"oi_noskew_s26", fuzz_oi_noskew, 26}),
    [](const auto& info) { return info.param.label; });

}  // namespace
}  // namespace oi::core
