#include "bibd/constructions.hpp"
#include "bibd/design.hpp"
#include "bibd/registry.hpp"

#include <gtest/gtest.h>

#include <set>

namespace oi::bibd {
namespace {

TEST(Fano, ClassicParameters) {
  const Design d = fano();
  EXPECT_EQ(d.v, 7u);
  EXPECT_EQ(d.k, 3u);
  EXPECT_EQ(d.lambda, 1u);
  EXPECT_EQ(d.b(), 7u);
  EXPECT_EQ(d.r(), 3u);
  EXPECT_TRUE(is_valid(d));
}

struct PlaneCase {
  std::size_t q;
};

class ProjectivePlaneTest : public ::testing::TestWithParam<PlaneCase> {};

TEST_P(ProjectivePlaneTest, ParametersAndValidity) {
  const std::size_t q = GetParam().q;
  const Design d = projective_plane(q);
  EXPECT_EQ(d.v, q * q + q + 1);
  EXPECT_EQ(d.k, q + 1);
  EXPECT_EQ(d.b(), d.v);
  EXPECT_EQ(d.r(), q + 1);
  EXPECT_TRUE(is_valid(d)) << verify(d);
}

INSTANTIATE_TEST_SUITE_P(Orders, ProjectivePlaneTest,
                         ::testing::Values(PlaneCase{2}, PlaneCase{3}, PlaneCase{5},
                                           PlaneCase{7}, PlaneCase{11}),
                         [](const auto& info) {
                           return "q" + std::to_string(info.param.q);
                         });

class AffinePlaneTest : public ::testing::TestWithParam<PlaneCase> {};

TEST_P(AffinePlaneTest, ParametersAndValidity) {
  const std::size_t q = GetParam().q;
  const Design d = affine_plane(q);
  EXPECT_EQ(d.v, q * q);
  EXPECT_EQ(d.k, q);
  EXPECT_EQ(d.b(), q * q + q);
  EXPECT_EQ(d.r(), q + 1);
  EXPECT_TRUE(is_valid(d)) << verify(d);
}

INSTANTIATE_TEST_SUITE_P(Orders, AffinePlaneTest,
                         ::testing::Values(PlaneCase{2}, PlaneCase{3}, PlaneCase{5},
                                           PlaneCase{7}, PlaneCase{11}),
                         [](const auto& info) {
                           return "q" + std::to_string(info.param.q);
                         });

TEST(Planes, RejectNonPrimeOrders) {
  EXPECT_THROW(projective_plane(4), std::invalid_argument);
  EXPECT_THROW(projective_plane(6), std::invalid_argument);
  EXPECT_THROW(affine_plane(9), std::invalid_argument);
}

class BoseTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BoseTest, SteinerTripleSystem) {
  const std::size_t v = GetParam();
  const Design d = bose_steiner_triple(v);
  EXPECT_EQ(d.v, v);
  EXPECT_EQ(d.k, 3u);
  EXPECT_EQ(d.b(), v * (v - 1) / 6);
  EXPECT_TRUE(is_valid(d)) << verify(d);
}

INSTANTIATE_TEST_SUITE_P(Sizes, BoseTest, ::testing::Values(9, 15, 21, 27, 33, 39, 45),
                         [](const auto& info) {
                           return "v" + std::to_string(info.param);
                         });

class SkolemTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SkolemTest, SteinerTripleSystem) {
  const std::size_t v = GetParam();
  const Design d = skolem_steiner_triple(v);
  EXPECT_EQ(d.v, v);
  EXPECT_EQ(d.k, 3u);
  EXPECT_EQ(d.b(), v * (v - 1) / 6);
  EXPECT_TRUE(is_valid(d)) << verify(d);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SkolemTest, ::testing::Values(7, 13, 19, 25, 31, 37, 43),
                         [](const auto& info) {
                           return "v" + std::to_string(info.param);
                         });

TEST(Skolem, RejectsWrongResidue) {
  EXPECT_THROW(skolem_steiner_triple(9), std::invalid_argument);
  EXPECT_THROW(skolem_steiner_triple(6), std::invalid_argument);
}

TEST(SteinerDispatch, CoversBothResidues) {
  for (std::size_t v : {7, 9, 13, 15, 19, 21, 25, 27}) {
    const Design d = steiner_triple(v);
    EXPECT_TRUE(is_valid(d)) << "v=" << v << ": " << verify(d);
  }
  EXPECT_THROW(steiner_triple(8), std::invalid_argument);
  EXPECT_THROW(steiner_triple(5), std::invalid_argument);
}

TEST(Bose, RejectsWrongResidue) {
  EXPECT_THROW(bose_steiner_triple(7), std::invalid_argument);
  EXPECT_THROW(bose_steiner_triple(13), std::invalid_argument);
  EXPECT_THROW(bose_steiner_triple(12), std::invalid_argument);
}

struct DfCase {
  std::size_t v;
  std::size_t k;
};

class DifferenceFamilyTest : public ::testing::TestWithParam<DfCase> {};

TEST_P(DifferenceFamilyTest, SearchFindsValidDesign) {
  const auto [v, k] = GetParam();
  const auto d = cyclic_difference_family(v, k);
  ASSERT_TRUE(d.has_value()) << "no family found for v=" << v << " k=" << k;
  EXPECT_EQ(d->v, v);
  EXPECT_EQ(d->k, k);
  EXPECT_TRUE(is_valid(*d)) << verify(*d);
}

INSTANTIATE_TEST_SUITE_P(Admissible, DifferenceFamilyTest,
                         ::testing::Values(DfCase{7, 3}, DfCase{13, 3}, DfCase{19, 3},
                                           DfCase{25, 3}, DfCase{31, 3}, DfCase{37, 3},
                                           DfCase{13, 4}, DfCase{37, 4}, DfCase{21, 5},
                                           DfCase{41, 5}),
                         [](const auto& info) {
                           return "v" + std::to_string(info.param.v) + "k" +
                                  std::to_string(info.param.k);
                         });

TEST(DifferenceFamily, RejectsInadmissibleResidue) {
  EXPECT_THROW(cyclic_difference_family(10, 3), std::invalid_argument);
  EXPECT_THROW(cyclic_difference_family(14, 4), std::invalid_argument);
}

TEST(CompleteDesign, SmallCases) {
  const Design d = complete_design(5, 3);
  EXPECT_EQ(d.b(), 10u);
  EXPECT_EQ(d.lambda, 3u);  // C(3,1)
  EXPECT_TRUE(is_valid(d)) << verify(d);

  const Design pairs = complete_design(6, 2);
  EXPECT_EQ(pairs.b(), 15u);
  EXPECT_EQ(pairs.lambda, 1u);
  EXPECT_TRUE(is_valid(pairs));
}

TEST(Verifier, DetectsBrokenDesigns) {
  Design d = fano();

  Design wrong_b = d;
  wrong_b.blocks.pop_back();
  EXPECT_FALSE(is_valid(wrong_b));

  Design bad_point = d;
  bad_point.blocks[0][2] = 99;
  EXPECT_FALSE(is_valid(bad_point));

  Design unsorted = d;
  std::swap(unsorted.blocks[0][0], unsorted.blocks[0][1]);
  EXPECT_FALSE(is_valid(unsorted));

  Design pair_broken = d;
  // Swap one point so that some pair is covered twice and another zero times
  // (block count and sizes stay right).
  pair_broken.blocks[0] = pair_broken.blocks[1];
  EXPECT_FALSE(is_valid(pair_broken));
}

TEST(Verifier, ReportsDivisibilityViolations) {
  Design d;
  d.v = 8;
  d.k = 3;
  d.lambda = 1;  // (v-1) = 7 not divisible by k-1 = 2
  EXPECT_NE(verify(d), "");
}

TEST(PointIndex, EveryPointInRBlocks) {
  const Design d = projective_plane(3);
  const auto index = point_to_blocks(d);
  ASSERT_EQ(index.size(), d.v);
  for (const auto& blocks : index) EXPECT_EQ(blocks.size(), d.r());
}

TEST(PointIndex, BlockOfPairIsConsistent) {
  const Design d = fano();
  for (std::size_t p = 0; p < d.v; ++p) {
    for (std::size_t q = p + 1; q < d.v; ++q) {
      const std::size_t bi = block_of_pair(d, p, q);
      ASSERT_LT(bi, d.b());
      const auto& block = d.blocks[bi];
      EXPECT_TRUE(std::count(block.begin(), block.end(), p) == 1);
      EXPECT_TRUE(std::count(block.begin(), block.end(), q) == 1);
    }
  }
}

TEST(Registry, FindsStructuredDesigns) {
  auto fano_d = find_design(7, 3);
  ASSERT_TRUE(fano_d.has_value());
  EXPECT_EQ(fano_d->origin, "PG(2,2)");

  auto ag3 = find_design(9, 3);
  ASSERT_TRUE(ag3.has_value());
  EXPECT_EQ(ag3->origin, "AG(2,3)");

  auto sts15 = find_design(15, 3);
  ASSERT_TRUE(sts15.has_value());
  EXPECT_TRUE(is_valid(*sts15));

  auto pg3 = find_design(13, 4);
  ASSERT_TRUE(pg3.has_value());
  EXPECT_EQ(pg3->origin, "PG(2,3)");

  auto df = find_design(25, 3);
  ASSERT_TRUE(df.has_value());
  EXPECT_TRUE(is_valid(*df));
}

TEST(Registry, FallbackPolicy) {
  EXPECT_FALSE(find_design(8, 3).has_value());
  auto complete = find_design(8, 3, {.allow_complete = true});
  ASSERT_TRUE(complete.has_value());
  EXPECT_GT(complete->lambda, 1u);
  EXPECT_TRUE(is_valid(*complete));
}

TEST(Registry, KnownParametersAreAllConstructible) {
  const auto params = known_parameters(40, 3);
  EXPECT_FALSE(params.empty());
  for (const auto& [v, k] : params) {
    const auto d = find_design(v, k);
    ASSERT_TRUE(d.has_value()) << "v=" << v;
    EXPECT_TRUE(is_valid(*d));
  }
}

TEST(Registry, StandardCatalogAllValid) {
  const auto catalog = standard_catalog();
  EXPECT_GE(catalog.size(), 6u);
  std::set<std::string> origins;
  for (const auto& d : catalog) {
    EXPECT_TRUE(is_valid(d)) << d.origin << ": " << verify(d);
    origins.insert(d.origin);
  }
  EXPECT_EQ(origins.size(), catalog.size()) << "duplicate catalog entries";
}

}  // namespace
}  // namespace oi::bibd
