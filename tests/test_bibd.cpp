#include "bibd/constructions.hpp"
#include "bibd/design.hpp"
#include "bibd/gf.hpp"
#include "bibd/registry.hpp"

#include <gtest/gtest.h>

#include <set>

namespace oi::bibd {
namespace {

TEST(Fano, ClassicParameters) {
  const Design d = fano();
  EXPECT_EQ(d.v, 7u);
  EXPECT_EQ(d.k, 3u);
  EXPECT_EQ(d.lambda, 1u);
  EXPECT_EQ(d.b(), 7u);
  EXPECT_EQ(d.r(), 3u);
  EXPECT_TRUE(is_valid(d));
}

struct PlaneCase {
  std::size_t q;
};

class ProjectivePlaneTest : public ::testing::TestWithParam<PlaneCase> {};

TEST_P(ProjectivePlaneTest, ParametersAndValidity) {
  const std::size_t q = GetParam().q;
  const Design d = projective_plane(q);
  EXPECT_EQ(d.v, q * q + q + 1);
  EXPECT_EQ(d.k, q + 1);
  EXPECT_EQ(d.b(), d.v);
  EXPECT_EQ(d.r(), q + 1);
  EXPECT_TRUE(is_valid(d)) << verify(d);
}

INSTANTIATE_TEST_SUITE_P(Orders, ProjectivePlaneTest,
                         ::testing::Values(PlaneCase{2}, PlaneCase{3}, PlaneCase{5},
                                           PlaneCase{7}, PlaneCase{11}),
                         [](const auto& info) {
                           return "q" + std::to_string(info.param.q);
                         });

class AffinePlaneTest : public ::testing::TestWithParam<PlaneCase> {};

TEST_P(AffinePlaneTest, ParametersAndValidity) {
  const std::size_t q = GetParam().q;
  const Design d = affine_plane(q);
  EXPECT_EQ(d.v, q * q);
  EXPECT_EQ(d.k, q);
  EXPECT_EQ(d.b(), q * q + q);
  EXPECT_EQ(d.r(), q + 1);
  EXPECT_TRUE(is_valid(d)) << verify(d);
}

INSTANTIATE_TEST_SUITE_P(Orders, AffinePlaneTest,
                         ::testing::Values(PlaneCase{2}, PlaneCase{3}, PlaneCase{5},
                                           PlaneCase{7}, PlaneCase{11}),
                         [](const auto& info) {
                           return "q" + std::to_string(info.param.q);
                         });

TEST(Planes, RejectNonPrimePowerOrders) {
  EXPECT_THROW(projective_plane(6), std::invalid_argument);
  EXPECT_THROW(projective_plane(10), std::invalid_argument);
  EXPECT_THROW(affine_plane(12), std::invalid_argument);
  EXPECT_THROW(affine_plane(0), std::invalid_argument);
  EXPECT_THROW(affine_plane(1), std::invalid_argument);
}

TEST(Planes, PrimePowerOrders) {
  for (const std::size_t q : {4u, 8u, 9u, 16u, 27u}) {
    const Design pg = projective_plane(q);
    EXPECT_EQ(pg.v, q * q + q + 1);
    EXPECT_EQ(pg.k, q + 1);
    EXPECT_EQ(pg.r(), q + 1);
    EXPECT_TRUE(is_valid(pg)) << verify(pg);
    EXPECT_FALSE(pg.resolvable());

    const Design ag = affine_plane(q);
    EXPECT_EQ(ag.v, q * q);
    EXPECT_EQ(ag.k, q);
    EXPECT_EQ(ag.r(), q + 1);
    EXPECT_TRUE(is_valid(ag)) << verify(ag);
    // Affine planes ship a resolution certificate; verify() above already
    // checked that each of the r = q+1 classes partitions the points.
    EXPECT_TRUE(ag.resolvable());
    EXPECT_EQ(ag.parallel_classes.size(), ag.b());
  }
}

class BoseTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BoseTest, SteinerTripleSystem) {
  const std::size_t v = GetParam();
  const Design d = bose_steiner_triple(v);
  EXPECT_EQ(d.v, v);
  EXPECT_EQ(d.k, 3u);
  EXPECT_EQ(d.b(), v * (v - 1) / 6);
  EXPECT_TRUE(is_valid(d)) << verify(d);
}

INSTANTIATE_TEST_SUITE_P(Sizes, BoseTest, ::testing::Values(9, 15, 21, 27, 33, 39, 45),
                         [](const auto& info) {
                           return "v" + std::to_string(info.param);
                         });

class SkolemTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SkolemTest, SteinerTripleSystem) {
  const std::size_t v = GetParam();
  const Design d = skolem_steiner_triple(v);
  EXPECT_EQ(d.v, v);
  EXPECT_EQ(d.k, 3u);
  EXPECT_EQ(d.b(), v * (v - 1) / 6);
  EXPECT_TRUE(is_valid(d)) << verify(d);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SkolemTest, ::testing::Values(7, 13, 19, 25, 31, 37, 43),
                         [](const auto& info) {
                           return "v" + std::to_string(info.param);
                         });

TEST(Skolem, RejectsWrongResidue) {
  EXPECT_THROW(skolem_steiner_triple(9), std::invalid_argument);
  EXPECT_THROW(skolem_steiner_triple(6), std::invalid_argument);
}

TEST(SteinerDispatch, CoversBothResidues) {
  for (std::size_t v : {7, 9, 13, 15, 19, 21, 25, 27}) {
    const Design d = steiner_triple(v);
    EXPECT_TRUE(is_valid(d)) << "v=" << v << ": " << verify(d);
  }
  EXPECT_THROW(steiner_triple(8), std::invalid_argument);
  EXPECT_THROW(steiner_triple(5), std::invalid_argument);
}

TEST(Bose, RejectsWrongResidue) {
  EXPECT_THROW(bose_steiner_triple(7), std::invalid_argument);
  EXPECT_THROW(bose_steiner_triple(13), std::invalid_argument);
  EXPECT_THROW(bose_steiner_triple(12), std::invalid_argument);
}

struct DfCase {
  std::size_t v;
  std::size_t k;
};

class DifferenceFamilyTest : public ::testing::TestWithParam<DfCase> {};

TEST_P(DifferenceFamilyTest, SearchFindsValidDesign) {
  const auto [v, k] = GetParam();
  const auto d = cyclic_difference_family(v, k);
  ASSERT_TRUE(d.has_value()) << "no family found for v=" << v << " k=" << k;
  EXPECT_EQ(d->v, v);
  EXPECT_EQ(d->k, k);
  EXPECT_TRUE(is_valid(*d)) << verify(*d);
}

INSTANTIATE_TEST_SUITE_P(Admissible, DifferenceFamilyTest,
                         ::testing::Values(DfCase{7, 3}, DfCase{13, 3}, DfCase{19, 3},
                                           DfCase{25, 3}, DfCase{31, 3}, DfCase{37, 3},
                                           DfCase{13, 4}, DfCase{37, 4}, DfCase{21, 5},
                                           DfCase{41, 5}),
                         [](const auto& info) {
                           return "v" + std::to_string(info.param.v) + "k" +
                                  std::to_string(info.param.k);
                         });

TEST(DifferenceFamily, RejectsInadmissibleResidue) {
  EXPECT_THROW(cyclic_difference_family(10, 3), std::invalid_argument);
  EXPECT_THROW(cyclic_difference_family(14, 4), std::invalid_argument);
}

TEST(CompleteDesign, SmallCases) {
  const Design d = complete_design(5, 3);
  EXPECT_EQ(d.b(), 10u);
  EXPECT_EQ(d.lambda, 3u);  // C(3,1)
  EXPECT_TRUE(is_valid(d)) << verify(d);

  const Design pairs = complete_design(6, 2);
  EXPECT_EQ(pairs.b(), 15u);
  EXPECT_EQ(pairs.lambda, 1u);
  EXPECT_TRUE(is_valid(pairs));
}

TEST(Verifier, DetectsBrokenDesigns) {
  Design d = fano();

  Design wrong_b = d;
  wrong_b.blocks.pop_back();
  EXPECT_FALSE(is_valid(wrong_b));

  Design bad_point = d;
  bad_point.blocks[0][2] = 99;
  EXPECT_FALSE(is_valid(bad_point));

  Design unsorted = d;
  std::swap(unsorted.blocks[0][0], unsorted.blocks[0][1]);
  EXPECT_FALSE(is_valid(unsorted));

  Design pair_broken = d;
  // Swap one point so that some pair is covered twice and another zero times
  // (block count and sizes stay right).
  pair_broken.blocks[0] = pair_broken.blocks[1];
  EXPECT_FALSE(is_valid(pair_broken));
}

TEST(Verifier, ReportsDivisibilityViolations) {
  Design d;
  d.v = 8;
  d.k = 3;
  d.lambda = 1;  // (v-1) = 7 not divisible by k-1 = 2
  EXPECT_NE(verify(d), "");
}

TEST(PointIndex, EveryPointInRBlocks) {
  const Design d = projective_plane(3);
  const auto index = point_to_blocks(d);
  ASSERT_EQ(index.size(), d.v);
  for (const auto& blocks : index) EXPECT_EQ(blocks.size(), d.r());
}

TEST(PointIndex, BlockOfPairIsConsistent) {
  const Design d = fano();
  for (std::size_t p = 0; p < d.v; ++p) {
    for (std::size_t q = p + 1; q < d.v; ++q) {
      const std::size_t bi = block_of_pair(d, p, q);
      ASSERT_LT(bi, d.b());
      const auto& block = d.blocks[bi];
      EXPECT_TRUE(std::count(block.begin(), block.end(), p) == 1);
      EXPECT_TRUE(std::count(block.begin(), block.end(), q) == 1);
    }
  }
}

TEST(Registry, FindsStructuredDesigns) {
  auto fano_d = find_design(7, 3);
  ASSERT_TRUE(fano_d.has_value());
  EXPECT_EQ(fano_d->origin, "PG(2,2)");

  auto ag3 = find_design(9, 3);
  ASSERT_TRUE(ag3.has_value());
  EXPECT_EQ(ag3->origin, "AG(2,3)");

  auto sts15 = find_design(15, 3);
  ASSERT_TRUE(sts15.has_value());
  EXPECT_TRUE(is_valid(*sts15));

  auto pg3 = find_design(13, 4);
  ASSERT_TRUE(pg3.has_value());
  EXPECT_EQ(pg3->origin, "PG(2,3)");

  auto df = find_design(25, 3);
  ASSERT_TRUE(df.has_value());
  EXPECT_TRUE(is_valid(*df));
}

TEST(Registry, FallbackPolicy) {
  EXPECT_FALSE(find_design(8, 3).has_value());
  auto complete = find_design(8, 3, {.allow_complete = true});
  ASSERT_TRUE(complete.has_value());
  EXPECT_GT(complete->lambda, 1u);
  EXPECT_TRUE(is_valid(*complete));
}

TEST(Registry, KnownParametersAreAllConstructible) {
  const auto params = known_parameters(40, 3);
  EXPECT_FALSE(params.empty());
  for (const auto& [v, k] : params) {
    const auto d = find_design(v, k);
    ASSERT_TRUE(d.has_value()) << "v=" << v;
    EXPECT_TRUE(is_valid(*d));
  }
}

TEST(Registry, StandardCatalogAllValid) {
  const auto catalog = standard_catalog();
  EXPECT_GE(catalog.size(), 6u);
  std::set<std::string> origins;
  for (const auto& d : catalog) {
    EXPECT_TRUE(is_valid(d)) << d.origin << ": " << verify(d);
    origins.insert(d.origin);
  }
  EXPECT_EQ(origins.size(), catalog.size()) << "duplicate catalog entries";
}

TEST(SmallFieldTest, DetectsPrimePowers) {
  std::size_t p = 0, e = 0;
  EXPECT_TRUE(SmallField::is_prime_power(9, &p, &e));
  EXPECT_EQ(p, 3u);
  EXPECT_EQ(e, 2u);
  EXPECT_TRUE(SmallField::is_prime_power(32, &p, &e));
  EXPECT_EQ(p, 2u);
  EXPECT_EQ(e, 5u);
  EXPECT_TRUE(SmallField::is_prime_power(13, &p, &e));
  EXPECT_EQ(e, 1u);
  EXPECT_FALSE(SmallField::is_prime_power(1));
  EXPECT_FALSE(SmallField::is_prime_power(6));
  EXPECT_FALSE(SmallField::is_prime_power(12));
  EXPECT_FALSE(SmallField::is_prime_power(100));
}

TEST(SmallFieldTest, FieldAxioms) {
  for (const std::size_t q : {4u, 8u, 9u, 16u, 25u, 27u}) {
    const SmallField f(q);
    for (std::size_t a = 0; a < q; ++a) {
      EXPECT_EQ(f.add(a, 0), a);
      EXPECT_EQ(f.add(a, f.neg(a)), 0u);
      EXPECT_EQ(f.mul(a, 1), a);
      EXPECT_EQ(f.mul(a, 0), 0u);
      if (a != 0) EXPECT_EQ(f.mul(a, f.inv(a)), 1u) << "q=" << q << " a=" << a;
      for (std::size_t b = 0; b < q; ++b) {
        EXPECT_EQ(f.add(a, b), f.add(b, a));
        EXPECT_EQ(f.mul(a, b), f.mul(b, a));
        // No zero divisors: the hallmark of a field vs. Z_q for composite q.
        if (a != 0 && b != 0) EXPECT_NE(f.mul(a, b), 0u);
        for (std::size_t c = 0; c < std::min<std::size_t>(q, 8); ++c) {
          EXPECT_EQ(f.mul(a, f.add(b, c)), f.add(f.mul(a, b), f.mul(a, c)));
        }
      }
    }
  }
  EXPECT_THROW(SmallField(6), std::invalid_argument);
  EXPECT_THROW(SmallField(1000), std::invalid_argument);
}

TEST(ComposedDesign, TdFillConstructions) {
  const auto sub = [](std::size_t v, std::size_t k) { return find_design(v, k); };
  // v = k*n: (52,4) = TD(4,13) + PG(2,3) on each group.
  const auto d52 = composed_design(52, 4, sub);
  ASSERT_TRUE(d52.has_value());
  EXPECT_EQ(d52->v, 52u);
  EXPECT_EQ(d52->k, 4u);
  EXPECT_EQ(d52->lambda, 1u);
  EXPECT_EQ(d52->r(), 17u);
  EXPECT_TRUE(is_valid(*d52)) << verify(*d52);

  // v = k*n with prime-power n: (64,4) = TD(4,16) + AG(2,4).
  const auto d64 = composed_design(64, 4, sub);
  ASSERT_TRUE(d64.has_value());
  EXPECT_EQ(d64->r(), 21u);
  EXPECT_TRUE(is_valid(*d64)) << verify(*d64);

  // v = k*n + 1: (40,3) = TD(3,13) + a (14,3) fill -- no (14,3,1) exists, so
  // this must fail cleanly; (39,3) = TD(3,13) + STS(13) succeeds.
  EXPECT_FALSE(composed_design(40, 3, sub).has_value());
  const auto d39 = composed_design(39, 3, sub);
  ASSERT_TRUE(d39.has_value());
  EXPECT_TRUE(is_valid(*d39)) << verify(*d39);

  // The pointed form: (85,4) = TD(4,21) + (22,4)? 22 inadmissible -> fail;
  // (25,4) = TD(4,6) blocked by MacNeish (6 = 2*3, factor < k).
  EXPECT_FALSE(composed_design(24, 4, sub).has_value());
}

TEST(ComposedDesign, PointedFormSharesInfinity) {
  const auto sub = [](std::size_t v, std::size_t k) { return find_design(v, k); };
  // v = k*n + 1 with n = 9, k = 3: fills are (10,3)? inadmissible. Use
  // (3*7)+1 = 22 -> (8,3) fill inadmissible too. k=4, n=13: v = 53,
  // fill (14,4) inadmissible. k=5, n=25: v = 126, fill (26,5)? r=25/4 no.
  // The smallest pointed hit with this catalog: k=4, n=36 -> v=145, fill
  // (37,4,1) via difference family. Keep it cheap: probe and accept either
  // outcome for exotic fills, but require correctness when it succeeds.
  const auto d = composed_design(145, 4, sub);
  if (d.has_value()) {
    EXPECT_EQ(d->v, 145u);
    EXPECT_TRUE(is_valid(*d)) << verify(*d);
  }
}

TEST(Registry, FallbackOrderIsDocumentedOrder) {
  // Stage 1: projective plane wins when parameters match, prime powers
  // included.
  EXPECT_EQ(find_design(21, 5)->origin, "PG(2,4)");
  EXPECT_EQ(find_design(91, 10)->origin, "PG(2,9)");
  // Stage 2: affine plane (prime-power k), ahead of any STS/DF route.
  EXPECT_EQ(find_design(16, 4)->origin, "AG(2,4)");
  EXPECT_EQ(find_design(9, 3)->origin, "AG(2,3)");
  // Stage 3: STS for k=3 orders the planes don't cover.
  EXPECT_EQ(find_design(15, 3)->origin, "Bose-STS(15)");
  EXPECT_EQ(find_design(19, 3)->origin, "Skolem-STS(19)");
  // Stage 4: difference-family search (v = 1 mod k(k-1), no plane match).
  EXPECT_EQ(find_design(37, 4)->origin, "cyclic-DF(37,4)");
  // Stage 5: composition for awkward v none of the families reach.
  EXPECT_EQ(find_design(52, 4)->origin, "TD(4,13)+PG(2,3)");
  EXPECT_EQ(find_design(64, 4)->origin, "TD(4,16)+AG(2,4)");
  // Options gate the optional stages.
  EXPECT_FALSE(find_design(52, 4, {.allow_composed = false}).has_value());
  EXPECT_FALSE(find_design(37, 4, {.allow_search = false, .allow_composed = false})
                   .has_value());
}

TEST(Registry, ExoticParametersFallThroughToNullopt) {
  // (365, k) violates the counting conditions for k = 3 and 4: every stage
  // is inapplicable and find_design must return nullopt, not throw.
  EXPECT_FALSE(find_design(365, 3).has_value());
  EXPECT_FALSE(find_design(365, 4).has_value());
  // Admissible but unreachable-by-construction parameters also land on
  // nullopt: (46, 6) passes divisibility (r = 9, b = 69) but no implemented
  // family covers it.
  EXPECT_FALSE(find_design(46, 6).has_value());
  // Inadmissible residues never reach the complete design unless asked.
  EXPECT_FALSE(find_design(365, 3, {.allow_search = false}).has_value());
  EXPECT_TRUE(find_design(8, 3, {.allow_complete = true}).has_value());
}

TEST(LargeOrders, InvariantsAtScale) {
  // The catalog families at v >= 91: parameters, r-consistency, and the full
  // pair-coverage verifier.
  struct Case {
    std::size_t v, k;
    const char* origin;
  };
  const Case cases[] = {
      {91, 10, "PG(2,9)"},
      {273, 17, "PG(2,16)"},
      {367, 3, "Skolem-STS(367)"},
      {369, 3, "Bose-STS(369)"},
      {1024, 32, "AG(2,32)"},
      {1093, 3, "Skolem-STS(1093)"},
  };
  for (const auto& c : cases) {
    const auto d = find_design(c.v, c.k);
    ASSERT_TRUE(d.has_value()) << c.origin;
    EXPECT_EQ(d->origin, c.origin);
    EXPECT_EQ(d->v, c.v);
    EXPECT_EQ(d->k, c.k);
    EXPECT_EQ(d->lambda, 1u);
    EXPECT_EQ(d->r(), (c.v - 1) / (c.k - 1));
    EXPECT_EQ(d->b() * d->k, d->v * d->r()) << "b*k = v*r must hold";
    EXPECT_TRUE(is_valid(*d)) << c.origin << ": " << verify(*d);
  }
}

}  // namespace
}  // namespace oi::bibd
