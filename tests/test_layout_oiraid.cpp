// OI-RAID-specific properties: geometry, role accounting, the paper's three
// headline structural claims (3-failure tolerance, 3-parity-update writes,
// balanced recovery reads), and the outer-stripe structure induced by the
// BIBD.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "bibd/constructions.hpp"
#include "layout/analysis.hpp"
#include "layout/oi_raid.hpp"
#include "util/stats.hpp"

namespace oi::layout {
namespace {

OiRaidLayout fano_layout(std::size_t m = 3, std::size_t h = 6) {
  return OiRaidLayout(OiRaidParams{bibd::fano(), m, h});
}

TEST(OiRaidGeometry, CountsMatchFormulas) {
  const OiRaidLayout layout = fano_layout();
  EXPECT_EQ(layout.groups(), 7u);
  EXPECT_EQ(layout.disks(), 21u);
  EXPECT_EQ(layout.replication(), 3u);
  EXPECT_EQ(layout.blocks(), 7u);
  EXPECT_EQ(layout.strips_per_disk(), 18u);  // r * H
  EXPECT_EQ(layout.stripes_per_block(), 12u);  // H * (m-1)
  EXPECT_EQ(layout.data_strips(), 7u * 12u * 2u);
  EXPECT_DOUBLE_EQ(layout.data_fraction(), oi_raid_data_fraction(3, 3));
  EXPECT_EQ(layout.fault_tolerance(), 3u);
}

TEST(OiRaidGeometry, RoleFractions) {
  const OiRaidLayout layout = fano_layout();
  std::map<StripRole, std::size_t> counts;
  for (std::size_t d = 0; d < layout.disks(); ++d) {
    for (std::size_t o = 0; o < layout.strips_per_disk(); ++o) {
      ++counts[layout.inspect({d, o}).role];
    }
  }
  const std::size_t total = layout.total_strips();
  EXPECT_EQ(counts[StripRole::kParity], total / 3);           // 1/m
  EXPECT_EQ(counts[StripRole::kOuterParity], total * 2 / 9);  // (m-1)/(m*k)
  EXPECT_EQ(counts[StripRole::kData], total * 4 / 9);         // (m-1)(k-1)/(m*k)
}

TEST(OiRaidStructure, OuterStripesHaveOneCellPerBlockGroup) {
  const OiRaidLayout layout = fano_layout();
  const auto& design = layout.design();
  for (std::size_t block = 0; block < layout.blocks(); ++block) {
    std::set<StripLoc> seen;
    for (std::size_t t = 0; t < layout.stripes_per_block(); ++t) {
      const auto cells = layout.outer_stripe_cells(block, t);
      ASSERT_EQ(cells.size(), design.k);
      for (std::size_t pos = 0; pos < cells.size(); ++pos) {
        EXPECT_EQ(cells[pos].disk / layout.disks_per_group(), design.blocks[block][pos]);
        EXPECT_TRUE(seen.insert(cells[pos]).second)
            << "cell reused across outer stripes of one block";
      }
    }
    // The block's stripes exactly tile the content cells of its k regions.
    EXPECT_EQ(seen.size(), layout.stripes_per_block() * design.k);
  }
}

TEST(OiRaidStructure, OuterCellsAreNeverInnerParity) {
  const OiRaidLayout layout = fano_layout();
  for (std::size_t block = 0; block < layout.blocks(); ++block) {
    for (std::size_t t = 0; t < layout.stripes_per_block(); ++t) {
      for (const StripLoc& cell : layout.outer_stripe_cells(block, t)) {
        EXPECT_NE(layout.inspect(cell).role, StripRole::kParity);
      }
    }
  }
}

TEST(OiRaidUpdate, ThreeParityUpdatesTouchingBothLayers) {
  const OiRaidLayout layout = fano_layout();
  const std::size_t m = layout.disks_per_group();
  for (std::size_t logical = 0; logical < layout.data_strips(); logical += 7) {
    const WritePlan plan = layout.small_write_plan(logical);
    EXPECT_EQ(plan.parity_updates, 3u);
    ASSERT_EQ(plan.writes.size(), 4u);
    const StripLoc data = plan.writes[0];
    const StripLoc inner = plan.writes[1];
    const StripLoc outer = plan.writes[2];
    const StripLoc outer_inner = plan.writes[3];
    EXPECT_EQ(layout.inspect(data).role, StripRole::kData);
    EXPECT_EQ(layout.inspect(inner).role, StripRole::kParity);
    EXPECT_EQ(layout.inspect(outer).role, StripRole::kOuterParity);
    EXPECT_EQ(layout.inspect(outer_inner).role, StripRole::kParity);
    // Inner parity shares the data strip's group and offset.
    EXPECT_EQ(inner.disk / m, data.disk / m);
    EXPECT_EQ(inner.offset, data.offset);
    // Outer parity lives in a different group; its inner parity alongside it.
    EXPECT_NE(outer.disk / m, data.disk / m);
    EXPECT_EQ(outer_inner.disk / m, outer.disk / m);
    EXPECT_EQ(outer_inner.offset, outer.offset);
  }
}

TEST(OiRaidRecovery, ExhaustiveTripleFailureTolerance) {
  const OiRaidLayout layout = fano_layout(3, 2);  // compact geometry
  const std::size_t n = layout.disks();
  std::size_t patterns = 0;
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = a + 1; b < n; ++b) {
      for (std::size_t c = b + 1; c < n; ++c) {
        const auto plan = layout.recovery_plan({a, b, c});
        ASSERT_TRUE(plan.has_value()) << "unrecoverable: " << a << "," << b << "," << c;
        ASSERT_EQ(check_recovery_plan(layout, {a, b, c}, *plan), "")
            << a << "," << b << "," << c;
        ++patterns;
      }
    }
  }
  EXPECT_EQ(patterns, 21u * 20u * 19u / 6u);
}

TEST(OiRaidRecovery, ExhaustiveTripleFailureToleranceM2) {
  // Smallest inner layer (m=2, mirrored pairs) on AG(2,3): 18 disks.
  const OiRaidLayout layout(OiRaidParams{bibd::affine_plane(3), 2, 2});
  const std::size_t n = layout.disks();
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = a + 1; b < n; ++b) {
      for (std::size_t c = b + 1; c < n; ++c) {
        EXPECT_TRUE(layout.recovery_plan({a, b, c}).has_value())
            << "unrecoverable: " << a << "," << b << "," << c;
      }
    }
  }
}

TEST(OiRaidRecovery, WholeGroupLossRecoverable) {
  const OiRaidLayout layout = fano_layout(3, 4);
  // All m disks of group 2 fail simultaneously.
  const std::vector<std::size_t> failed{6, 7, 8};
  const auto plan = layout.recovery_plan(failed);
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(check_recovery_plan(layout, failed, *plan), "");
  // Recovery of a whole group must never read the group itself.
  for (const auto& step : *plan) {
    for (const auto& read : step.reads) {
      EXPECT_TRUE(read.disk < 6 || read.disk > 8 ||
                  std::find_if(plan->begin(), plan->end(),
                               [&](const RecoveryStep& s) { return s.lost == read; }) !=
                      plan->end());
    }
  }
}

TEST(OiRaidRecovery, SomeQuadrupleFailuresFailSomeSucceed) {
  const OiRaidLayout layout = fano_layout(3, 2);
  // Four failures spread over four distinct groups: recoverable (each group
  // has a single failure).
  const auto spread = layout.recovery_plan({0, 3, 6, 9});
  EXPECT_TRUE(spread.has_value());

  // Sweep 4-failure patterns; OI-RAID guarantees only 3, so at least one
  // pattern must be unrecoverable and a decent share should survive.
  std::size_t ok = 0;
  std::size_t bad = 0;
  const std::size_t n = layout.disks();
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = a + 1; b < n; ++b) {
      for (std::size_t c = b + 1; c < n; ++c) {
        for (std::size_t d = c + 1; d < n; ++d) {
          if ((a + b + c + d) % 7 != 0) continue;  // thin the sweep for speed
          if (layout.recovery_plan({a, b, c, d}).has_value()) {
            ++ok;
          } else {
            ++bad;
          }
        }
      }
    }
  }
  EXPECT_GT(ok, 0u);
  EXPECT_GT(bad, 0u);
}

TEST(OiRaidRecovery, SingleFailureReadsSpreadAcrossOtherGroups) {
  // H must span several parity-band cycles (band = m-1 offsets, cycle =
  // m*(m-1) offsets) for the skew rotation to close; H=30 = 5 cycles.
  const OiRaidLayout layout = fano_layout(3, 30);
  const std::size_t failed = 4;  // group 1, member 1
  const auto plan = layout.recovery_plan({failed});
  ASSERT_TRUE(plan.has_value());
  const auto load = per_disk_read_load(layout, {failed}, *plan);

  const std::size_t m = layout.disks_per_group();
  const std::size_t group = failed / m;
  // The failed disk's own group serves nothing (outer + composite repair).
  for (std::size_t j = 0; j < m; ++j) {
    EXPECT_DOUBLE_EQ(load[group * m + j], 0.0) << "group member " << j;
  }
  // Every disk of every other group serves some reads.
  std::vector<double> active;
  for (std::size_t d = 0; d < layout.disks(); ++d) {
    if (d / m == group) continue;
    EXPECT_GT(load[d], 0.0) << "disk " << d << " idle";
    active.push_back(load[d]);
  }
  // Skew keeps the spread tight; the busiest disk does at most 2x the mean
  // (measured ~1.3 on this geometry; bound leaves margin but still fails for
  // an unskewed layout, which concentrates 3x+).
  EXPECT_LE(max_over_mean(active), 2.0);
}

TEST(OiRaidRecovery, ReadVolumeMatchesClosedForm) {
  const OiRaidLayout layout = fano_layout(3, 6);
  const auto plan = layout.recovery_plan({0});
  ASSERT_TRUE(plan.has_value());
  const auto load = per_disk_read_load(layout, {0}, *plan);
  double total = 0.0;
  for (double x : load) total += x;
  // content strips: S*(m-1)/m of the disk, (k-1) reads each;
  // inner parity:   S/m, (m-1)(k-1) reads each.
  const double s = static_cast<double>(layout.strips_per_disk());
  const double m = 3.0;
  const double k = 3.0;
  const double expected = s * (m - 1) / m * (k - 1) + s / m * (m - 1) * (k - 1);
  EXPECT_DOUBLE_EQ(total, expected);
}

TEST(OiRaidRecovery, DegradedReadOfDataStrip) {
  // A degraded read of one lost data strip = its outer relation: k-1 reads,
  // none in the failed disk's group.
  const OiRaidLayout layout = fano_layout();
  const std::size_t m = layout.disks_per_group();
  for (std::size_t logical = 0; logical < layout.data_strips(); logical += 13) {
    const StripLoc loc = layout.locate(logical);
    const auto relations = layout.relations_of(loc);
    bool has_outer = false;
    for (const auto& rel : relations) {
      if (rel.kind != RelationKind::kOuter) continue;
      has_outer = true;
      EXPECT_EQ(rel.strips.size(), layout.stripe_width());
      for (const auto& member : rel.strips) {
        if (member == loc) continue;
        EXPECT_NE(member.disk / m, loc.disk / m);
      }
    }
    EXPECT_TRUE(has_outer);
  }
}

TEST(OiRaidRecovery, CompositeRelationAvoidsOwnGroup) {
  const OiRaidLayout layout = fano_layout();
  const std::size_t m = layout.disks_per_group();
  std::size_t checked = 0;
  for (std::size_t d = 0; d < layout.disks() && checked < 40; ++d) {
    for (std::size_t o = 0; o < layout.strips_per_disk() && checked < 40; ++o) {
      const StripLoc loc{d, o};
      if (layout.inspect(loc).role != StripRole::kParity) continue;
      for (const auto& rel : layout.relations_of(loc)) {
        if (rel.kind != RelationKind::kOuterComposite) continue;
        ++checked;
        EXPECT_EQ(rel.strips.size(), 1 + (m - 1) * (layout.stripe_width() - 1));
        for (const auto& member : rel.strips) {
          if (member == loc) continue;
          EXPECT_NE(member.disk / m, loc.disk / m);
        }
      }
    }
  }
  EXPECT_EQ(checked, 40u);
}

TEST(OiRaidSweep, LargerGeometriesKeepContracts) {
  // PG(2,3): 13 groups of 4 -> 52 disks; STS(15): 15 groups of 3 -> 45.
  const std::vector<OiRaidParams> configs = {
      {bibd::projective_plane(3), 4, 6},
      {bibd::bose_steiner_triple(15), 3, 6},
  };
  for (const auto& config : configs) {
    const OiRaidLayout layout(config);
    EXPECT_EQ(check_mapping(layout), "") << layout.name();
    const auto plan = layout.recovery_plan({1});
    ASSERT_TRUE(plan.has_value()) << layout.name();
    EXPECT_EQ(check_recovery_plan(layout, {1}, *plan), "") << layout.name();
  }
}

}  // namespace
}  // namespace oi::layout
