#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/rng.hpp"

namespace oi {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(RunningStats, MatchesDirectComputation) {
  const std::vector<double> xs{3.0, 1.5, -2.0, 8.25, 0.0, 4.5};
  RunningStats s;
  for (double x : xs) s.add(x);
  double mean = 0.0;
  for (double x : xs) mean += x;
  mean /= static_cast<double>(xs.size());
  double var = 0.0;
  for (double x : xs) var += (x - mean) * (x - mean);
  var /= static_cast<double>(xs.size() - 1);
  EXPECT_NEAR(s.mean(), mean, 1e-12);
  EXPECT_NEAR(s.variance(), var, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), -2.0);
  EXPECT_DOUBLE_EQ(s.max(), 8.25);
  EXPECT_EQ(s.count(), xs.size());
}

TEST(RunningStats, SingleSampleHasZeroVariance) {
  RunningStats s;
  s.add(5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
}

TEST(RunningStats, MergeEqualsSequential) {
  Rng rng(1);
  RunningStats all;
  RunningStats left;
  RunningStats right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(3.0, 2.0);
    all.add(x);
    (i % 2 == 0 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a;
  a.add(1.0);
  a.add(2.0);
  RunningStats b;
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_NEAR(b.mean(), 1.5, 1e-12);
}

TEST(RunningStats, Ci95ShrinksWithSamples) {
  Rng rng(2);
  RunningStats small;
  RunningStats large;
  for (int i = 0; i < 100; ++i) small.add(rng.uniform01());
  for (int i = 0; i < 10000; ++i) large.add(rng.uniform01());
  EXPECT_GT(small.ci95_halfwidth(), large.ci95_halfwidth());
}

TEST(Percentile, NearestRank) {
  std::vector<double> xs{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.95), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 1.0), 10.0);
}

TEST(Percentile, EmptyReturnsZero) {
  EXPECT_DOUBLE_EQ(percentile({}, 0.5), 0.0);
}

TEST(Percentile, RejectsBadQ) {
  EXPECT_THROW(percentile({1.0}, 1.5), std::invalid_argument);
}

TEST(Percentile, EdgeCasesPinnedToSortedRankDefinition) {
  // Single element: every q selects it.
  for (double q : {0.0, 0.01, 0.5, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(percentile({42.0}, q), 42.0) << "q=" << q;
  }
  // Ties: rank = ceil(q*n) (clamped to >= 1) into the sorted order.
  const std::vector<double> ties{2.0, 2.0, 1.0, 1.0};  // sorted: 1 1 2 2
  EXPECT_DOUBLE_EQ(percentile(ties, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(ties, 0.5), 1.0);   // rank 2
  EXPECT_DOUBLE_EQ(percentile(ties, 0.75), 2.0);  // rank 3
  EXPECT_DOUBLE_EQ(percentile(ties, 1.0), 2.0);   // rank 4
  // Unsorted input with duplicates and negatives.
  const std::vector<double> xs{5.0, -1.0, 5.0, 3.0, -1.0};  // sorted: -1 -1 3 5 5
  EXPECT_DOUBLE_EQ(percentile(xs, 0.2), -1.0);  // rank 1
  EXPECT_DOUBLE_EQ(percentile(xs, 0.4), -1.0);  // rank 2
  EXPECT_DOUBLE_EQ(percentile(xs, 0.6), 3.0);   // rank 3
  EXPECT_DOUBLE_EQ(percentile(xs, 0.8), 5.0);   // rank 4
}

TEST(Percentile, MatchesFullSortReference) {
  // nth_element selection must agree with the sort-based nearest-rank
  // reference on random data for every rank.
  Rng rng(97);
  std::vector<double> xs;
  for (int i = 0; i < 257; ++i) xs.push_back(rng.uniform(-100.0, 100.0));
  std::vector<double> sorted = xs;
  std::sort(sorted.begin(), sorted.end());
  for (double q : {0.0, 0.001, 0.25, 0.5, 0.9, 0.95, 0.999, 1.0}) {
    auto rank = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(xs.size())));
    if (rank == 0) rank = 1;
    EXPECT_DOUBLE_EQ(percentile(xs, q), sorted[rank - 1]) << "q=" << q;
  }
}

TEST(WilsonInterval, MatchesTextbookValues) {
  // 5/10 at 95%: the classic worked example, (0.2366, 0.7634).
  const BinomialCi ci = wilson_interval(5, 10);
  EXPECT_NEAR(ci.lo, 0.2366, 2e-4);
  EXPECT_NEAR(ci.hi, 0.7634, 2e-4);
}

TEST(WilsonInterval, ZeroSuccessesGivesHonestUpperBound) {
  // At 0 successes the interval is [0, z^2/(n+z^2)] -- non-degenerate, unlike
  // the normal approximation.
  const BinomialCi ci = wilson_interval(0, 100);
  EXPECT_DOUBLE_EQ(ci.lo, 0.0);
  const double z2 = 1.96 * 1.96;
  EXPECT_NEAR(ci.hi, z2 / (100.0 + z2), 1e-12);
  // Symmetric at all successes.
  const BinomialCi all = wilson_interval(100, 100);
  EXPECT_NEAR(all.lo, 1.0 - z2 / (100.0 + z2), 1e-12);
  EXPECT_DOUBLE_EQ(all.hi, 1.0);
}

TEST(WilsonInterval, ShrinksWithTrialsAndCoversPointEstimate) {
  const BinomialCi small = wilson_interval(5, 50);
  const BinomialCi large = wilson_interval(500, 5000);
  EXPECT_LT(large.hi - large.lo, small.hi - small.lo);
  for (const auto& ci : {small, large}) {
    EXPECT_LE(ci.lo, 0.1);
    EXPECT_GE(ci.hi, 0.1);
  }
}

TEST(WilsonInterval, Validation) {
  EXPECT_THROW(wilson_interval(1, 0), std::invalid_argument);
  EXPECT_THROW(wilson_interval(5, 4), std::invalid_argument);
  EXPECT_THROW(wilson_interval(1, 10, 0.0), std::invalid_argument);
}

TEST(LoadMetrics, MaxOverMean) {
  EXPECT_DOUBLE_EQ(max_over_mean({2, 2, 2, 2}), 1.0);
  EXPECT_DOUBLE_EQ(max_over_mean({1, 3}), 1.5);
  EXPECT_DOUBLE_EQ(max_over_mean({}), 0.0);
}

TEST(LoadMetrics, CoefficientOfVariation) {
  EXPECT_DOUBLE_EQ(coefficient_of_variation({5, 5, 5}), 0.0);
  EXPECT_GT(coefficient_of_variation({1, 9}), 0.5);
}

TEST(HistogramTest, CountsAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(9.5);
  h.add(-3.0);   // clamps to first bucket
  h.add(100.0);  // clamps to last bucket
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.buckets().front(), 2u);
  EXPECT_EQ(h.buckets().back(), 2u);
}

TEST(HistogramTest, QuantileInterpolates) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 1000; ++i) h.add(static_cast<double>(i % 100) + 0.5);
  EXPECT_NEAR(h.quantile(0.5), 50.0, 2.0);
  EXPECT_NEAR(h.quantile(0.99), 99.0, 2.0);
}

TEST(HistogramTest, RenderMentionsCounts) {
  Histogram h(0.0, 2.0, 2);
  h.add(0.5);
  h.add(1.5);
  h.add(1.6);
  const std::string text = h.render(10);
  EXPECT_NE(text.find('#'), std::string::npos);
}

TEST(HistogramTest, RejectsEmptyRange) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
}

}  // namespace
}  // namespace oi
