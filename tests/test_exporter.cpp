// HTTP metrics exporter: live end-to-end scrapes against a real socket plus
// a Prometheus text-exposition lint. The lint enforces the format contract a
// real Prometheus server needs (metric-name grammar, HELP/TYPE preceding the
// samples, cumulative monotone histogram buckets, _sum/_count consistency) on
// the exact bytes a scrape returns -- not on a unit-level string.
#include "util/http_exporter.hpp"

#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "json_lint.hpp"
#include "util/metrics.hpp"
#include "util/telemetry_client.hpp"

namespace oi::telemetry {
namespace {

class ExporterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    metrics::Registry::instance().reset_values();
    metrics::set_enabled(true);
  }
  void TearDown() override {
    metrics::set_enabled(false);
    metrics::Registry::instance().reset_values();
  }
};

bool valid_metric_name(const std::string& name) {
  if (name.empty()) return false;
  const auto head = static_cast<unsigned char>(name[0]);
  if (!std::isalpha(head) && name[0] != '_' && name[0] != ':') return false;
  for (char c : name) {
    const auto u = static_cast<unsigned char>(c);
    if (!std::isalnum(u) && c != '_' && c != ':') return false;
  }
  return true;
}

struct PromSample {
  std::string name;
  std::string labels;  // raw text between {} (empty if none)
  double value = 0.0;
};

/// Structure-level lint of a text-format 0.0.4 exposition. Fails the current
/// test on any violation; returns the parsed samples for value checks.
std::vector<PromSample> lint_prometheus(const std::string& body) {
  std::vector<PromSample> samples;
  std::map<std::string, std::string> type_of;  // family -> counter|gauge|histogram
  std::map<std::string, bool> help_of;
  std::istringstream in(body);
  std::string line;
  while (std::getline(in, line)) {
    EXPECT_FALSE(line.empty()) << "exposition must not contain blank lines";
    if (line.rfind("# HELP ", 0) == 0 || line.rfind("# TYPE ", 0) == 0) {
      const bool is_type = line[2] == 'T';
      std::istringstream fields(line.substr(7));
      std::string family, rest;
      fields >> family >> rest;
      EXPECT_TRUE(valid_metric_name(family)) << line;
      EXPECT_FALSE(rest.empty()) << "empty HELP/TYPE payload: " << line;
      if (is_type) {
        EXPECT_TRUE(rest == "counter" || rest == "gauge" || rest == "histogram")
            << line;
        EXPECT_EQ(type_of.count(family), 0u) << "duplicate TYPE for " << family;
        type_of[family] = rest;
      } else {
        help_of[family] = true;
      }
      continue;
    }
    EXPECT_NE(line[0], '#') << "unknown comment form: " << line;

    PromSample s;
    std::size_t name_end = line.find_first_of("{ ");
    if (name_end == std::string::npos) {
      ADD_FAILURE() << "malformed sample line: " << line;
      continue;
    }
    s.name = line.substr(0, name_end);
    EXPECT_TRUE(valid_metric_name(s.name)) << line;
    std::size_t value_at = name_end + 1;
    if (line[name_end] == '{') {
      const std::size_t close = line.find('}', name_end);
      if (close == std::string::npos || close + 1 >= line.size() ||
          line[close + 1] != ' ') {
        ADD_FAILURE() << "malformed label block: " << line;
        continue;
      }
      s.labels = line.substr(name_end + 1, close - name_end - 1);
      value_at = close + 2;
    }
    const std::string value_text = line.substr(value_at);
    if (value_text == "+Inf") {
      s.value = std::numeric_limits<double>::infinity();
    } else {
      char* end = nullptr;
      s.value = std::strtod(value_text.c_str(), &end);
      EXPECT_TRUE(end != value_text.c_str() && *end == '\0')
          << "unparsable value: " << line;
    }

    // Every sample must belong to a family announced by TYPE (and HELP).
    std::string family = s.name;
    for (const char* suffix : {"_total", "_bucket", "_sum", "_count"}) {
      const std::string sfx(suffix);
      if (family.size() > sfx.size() &&
          family.compare(family.size() - sfx.size(), sfx.size(), sfx) == 0) {
        const std::string base = family.substr(0, family.size() - sfx.size());
        if (type_of.count(base) != 0) {
          family = base;
          break;
        }
      }
    }
    EXPECT_EQ(type_of.count(family), 1u)
        << "sample before/without TYPE: " << s.name;
    EXPECT_TRUE(help_of[family]) << "sample without HELP: " << s.name;
    samples.push_back(std::move(s));
  }

  // Histogram families: cumulative monotone buckets ending at +Inf, with the
  // +Inf bucket equal to _count.
  for (const auto& [family, type] : type_of) {
    if (type != "histogram") continue;
    double prev_le = -std::numeric_limits<double>::infinity();
    double prev_count = 0.0;
    double inf_bucket = -1.0;
    double count = -1.0;
    bool saw_sum = false;
    for (const PromSample& s : samples) {
      if (s.name == family + "_bucket") {
        if (s.labels.rfind("le=\"", 0) != 0) {
          ADD_FAILURE() << family << " bucket without le label";
          continue;
        }
        const std::string le_text =
            s.labels.substr(4, s.labels.size() - 5);  // strip le="..."
        const double le = le_text == "+Inf"
                              ? std::numeric_limits<double>::infinity()
                              : std::strtod(le_text.c_str(), nullptr);
        EXPECT_GT(le, prev_le) << family << " bucket bounds must increase";
        EXPECT_GE(s.value, prev_count)
            << family << " cumulative buckets must be monotone";
        prev_le = le;
        prev_count = s.value;
        if (le == std::numeric_limits<double>::infinity()) inf_bucket = s.value;
      } else if (s.name == family + "_count") {
        count = s.value;
      } else if (s.name == family + "_sum") {
        saw_sum = true;
      }
    }
    EXPECT_GE(inf_bucket, 0.0) << family << " is missing the +Inf bucket";
    EXPECT_TRUE(saw_sum) << family << " is missing _sum";
    EXPECT_EQ(inf_bucket, count) << family << ": +Inf bucket != _count";
  }
  return samples;
}

TEST_F(ExporterTest, LiveScrapePassesFormatLintAndCarriesValues) {
  metrics::Registry& reg = metrics::Registry::instance();
  reg.counter("test.exporter.requests").add(41);
  reg.gauge("test.exporter.queue_depth").set(2.5);
  metrics::FixedHistogram& h =
      reg.histogram("test.exporter.latency_us", 0.0, 100.0, 4);
  h.record(10.0);
  h.record(30.0);
  h.record(250.0);  // clamped into the last bucket

  HttpExporter exporter(0);  // ephemeral port
  ASSERT_GT(exporter.port(), 0);
  const std::string body = http_get("127.0.0.1", exporter.port(), "/metrics");
  const std::vector<PromSample> samples = lint_prometheus(body);

  const auto value_of = [&](const std::string& name) {
    for (const PromSample& s : samples) {
      if (s.name == name && s.labels.empty()) return s.value;
    }
    ADD_FAILURE() << "sample missing: " << name;
    return -1.0;
  };
  EXPECT_EQ(value_of("oi_test_exporter_requests_total"), 41.0);
  EXPECT_EQ(value_of("oi_test_exporter_queue_depth"), 2.5);
  EXPECT_EQ(value_of("oi_test_exporter_latency_us_count"), 3.0);
  EXPECT_EQ(value_of("oi_test_exporter_latency_us_sum"), 10.0 + 30.0 + 250.0);
}

TEST_F(ExporterTest, VarsServesTheJsonSnapshotAndHealthzAnswers) {
  metrics::Registry::instance().counter("test.exporter.vars_counter").add(7);
  HttpExporter exporter(0);
  const std::string json = http_get("127.0.0.1", exporter.port(), "/vars");
  EXPECT_TRUE(oi::testing::JsonLint::well_formed(json)) << json;
  EXPECT_NE(json.find("\"test.exporter.vars_counter\": 7"), std::string::npos);
  EXPECT_EQ(json, metrics::Registry::instance().to_json());

  EXPECT_EQ(http_get("127.0.0.1", exporter.port(), "/healthz"), "ok\n");
  EXPECT_GE(exporter.requests(), 2u);
}

TEST_F(ExporterTest, UnknownPathIsA404) {
  HttpExporter exporter(0);
  EXPECT_THROW(http_get("127.0.0.1", exporter.port(), "/nope"),
               std::runtime_error);
  // The listener survives an error response.
  EXPECT_EQ(http_get("127.0.0.1", exporter.port(), "/healthz"), "ok\n");
}

TEST_F(ExporterTest, ScrapeAdvancesBetweenPolls) {
  metrics::Counter& c =
      metrics::Registry::instance().counter("test.exporter.advancing");
  HttpExporter exporter(0);
  c.add(1);
  const MetricMap first =
      parse_prometheus_text(http_get("127.0.0.1", exporter.port(), "/metrics"));
  c.add(5);
  const MetricMap second =
      parse_prometheus_text(http_get("127.0.0.1", exporter.port(), "/metrics"));
  const auto a = find_metric(first, "test.exporter.advancing");
  const auto b = find_metric(second, "test.exporter.advancing");
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(*a, 1.0);
  EXPECT_EQ(*b, 6.0);
}

TEST_F(ExporterTest, ParsePrometheusTextHandlesCommentsLabelsAndInf) {
  const MetricMap map = parse_prometheus_text(
      "# HELP oi_x x\n# TYPE oi_x gauge\noi_x 1.5\n"
      "oi_h_bucket{le=\"+Inf\"} 4\noi_h_count 4\noi_nan NaN\noi_inf +Inf\n");
  EXPECT_EQ(map.at("oi_x"), 1.5);
  EXPECT_EQ(map.count("oi_h_bucket"), 0u);  // labelled series are skipped
  EXPECT_EQ(map.at("oi_h_count"), 4.0);
  EXPECT_TRUE(std::isnan(map.at("oi_nan")));
  EXPECT_TRUE(std::isinf(map.at("oi_inf")));
  EXPECT_THROW(parse_prometheus_text("not a metric line"), std::runtime_error);
}

TEST_F(ExporterTest, FindMetricResolvesBothKeyings) {
  MetricMap stream{{"sim.rebuild.steps", 9.0}, {"sim.rebuild.step_us.count", 3.0}};
  MetricMap scrape{{"oi_sim_rebuild_steps_total", 9.0},
                   {"oi_sim_rebuild_step_us_count", 3.0},
                   {"oi_reliability_mc_ess", 40.0}};
  EXPECT_EQ(find_metric(stream, "sim.rebuild.steps"), 9.0);
  EXPECT_EQ(find_metric(scrape, "sim.rebuild.steps"), 9.0);
  EXPECT_EQ(find_metric(stream, "sim.rebuild.step_us.count"), 3.0);
  EXPECT_EQ(find_metric(scrape, "sim.rebuild.step_us.count"), 3.0);
  EXPECT_EQ(find_metric(scrape, "reliability.mc.ess"), 40.0);
  EXPECT_FALSE(find_metric(scrape, "no.such.metric").has_value());
}

}  // namespace
}  // namespace oi::telemetry
