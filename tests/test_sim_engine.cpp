#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace oi::sim {
namespace {

TEST(Engine, RunsEventsInTimeOrder) {
  Engine engine;
  std::vector<int> order;
  engine.schedule_at(3.0, [&] { order.push_back(3); });
  engine.schedule_at(1.0, [&] { order.push_back(1); });
  engine.schedule_at(2.0, [&] { order.push_back(2); });
  const double end = engine.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(end, 3.0);
  EXPECT_EQ(engine.processed_events(), 3u);
}

TEST(Engine, SameTimeEventsAreFifo) {
  Engine engine;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    engine.schedule_at(5.0, [&order, i] { order.push_back(i); });
  }
  engine.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Engine, EventsCanScheduleEvents) {
  Engine engine;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 5) engine.schedule_after(1.0, chain);
  };
  engine.schedule_after(1.0, chain);
  const double end = engine.run();
  EXPECT_EQ(depth, 5);
  EXPECT_DOUBLE_EQ(end, 5.0);
}

TEST(Engine, RunUntilLeavesLaterEventsQueued) {
  Engine engine;
  int fired = 0;
  engine.schedule_at(1.0, [&] { ++fired; });
  engine.schedule_at(10.0, [&] { ++fired; });
  engine.run_until(5.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(engine.now(), 5.0);
  EXPECT_FALSE(engine.idle());
  engine.run();
  EXPECT_EQ(fired, 2);
}

TEST(Engine, RejectsPastEventsAndNegativeDelays) {
  Engine engine;
  engine.schedule_at(2.0, [] {});
  engine.run();
  EXPECT_THROW(engine.schedule_at(1.0, [] {}), std::invalid_argument);
  EXPECT_THROW(engine.schedule_after(-0.5, [] {}), std::invalid_argument);
  EXPECT_THROW(engine.run_until(1.0), std::invalid_argument);
}

TEST(Engine, RunBoundedStopsAtBudget) {
  Engine engine;
  int fired = 0;
  // Self-perpetuating event chain: unbounded run would never return.
  std::function<void()> chain = [&] {
    ++fired;
    engine.schedule_after(1.0, chain);
  };
  engine.schedule_after(1.0, chain);
  engine.run_bounded(10);
  EXPECT_EQ(fired, 10);
  EXPECT_FALSE(engine.idle());
  engine.run_bounded(5);
  EXPECT_EQ(fired, 15);
}

TEST(Engine, RunBoundedDrainsWhenShort) {
  Engine engine;
  int fired = 0;
  engine.schedule_at(1.0, [&] { ++fired; });
  engine.run_bounded(1000);
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(engine.idle());
}

TEST(Engine, RunUntilFiresEventExactlyOnHorizon) {
  Engine engine;
  int fired = 0;
  engine.schedule_at(5.0, [&] { ++fired; });
  engine.schedule_at(5.0 + 1e-9, [&] { ++fired; });
  const double end = engine.run_until(5.0);
  // The horizon is inclusive: an event exactly on it fires, one epsilon past
  // it stays queued.
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(end, 5.0);
  EXPECT_FALSE(engine.idle());
  engine.run();
  EXPECT_EQ(fired, 2);
}

TEST(Engine, RunBoundedZeroBudgetFiresNothing) {
  Engine engine;
  int fired = 0;
  engine.schedule_at(1.0, [&] { ++fired; });
  const double end = engine.run_bounded(0);
  EXPECT_EQ(fired, 0);
  EXPECT_DOUBLE_EQ(end, 0.0);
  EXPECT_FALSE(engine.idle());
  EXPECT_EQ(engine.processed_events(), 0u);
}

TEST(Engine, RerunAfterDrainIsIdempotentAndAcceptsNewEvents) {
  Engine engine;
  int fired = 0;
  engine.schedule_at(2.0, [&] { ++fired; });
  EXPECT_DOUBLE_EQ(engine.run(), 2.0);
  EXPECT_TRUE(engine.idle());

  // Draining again is a no-op: time holds and nothing re-fires.
  EXPECT_DOUBLE_EQ(engine.run(), 2.0);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(engine.processed_events(), 1u);

  // The engine stays usable: new events schedule from now() and run.
  engine.schedule_after(1.0, [&] { ++fired; });
  EXPECT_DOUBLE_EQ(engine.run(), 3.0);
  EXPECT_EQ(fired, 2);
  EXPECT_TRUE(engine.idle());
}

TEST(Engine, NowAdvancesMonotonically) {
  Engine engine;
  double last = -1.0;
  for (double t : {0.5, 0.5, 1.5, 2.0}) {
    engine.schedule_at(t, [&, t] {
      EXPECT_GE(engine.now(), last);
      EXPECT_DOUBLE_EQ(engine.now(), t);
      last = engine.now();
    });
  }
  engine.run();
}

}  // namespace
}  // namespace oi::sim
