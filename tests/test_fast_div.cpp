#include "util/fast_div.hpp"

#include <cstdint>
#include <limits>
#include <stdexcept>

#include <gtest/gtest.h>

namespace {

using oi::util::FastDiv32;

TEST(FastDiv, MatchesHardwareDivisionOnEdgeValues) {
  const std::uint32_t divisors[] = {
      1,       2,       3,      4,      5,     6,    7,    9,   10,
      11,      12,      13,     42,     63,    64,   65,   91,  100,
      127,     128,     129,    365,    1000,  1093, 4096, 4097,
      65535,   65536,   65537,  1000003,
      0x7FFFFFFEu, 0x7FFFFFFFu};
  const std::uint32_t values[] = {
      0, 1, 2, 3, 41, 42, 43, 63, 64, 65, 4095, 4096, 4097, 65535, 65536,
      1000002, 1000003, 1000004, 0x7FFFFFFFu, 0x80000000u, 0xFFFFFFFEu,
      0xFFFFFFFFu};
  for (const std::uint32_t d : divisors) {
    const FastDiv32 div(d);
    EXPECT_EQ(div.divisor(), d);
    for (const std::uint32_t x : values) {
      EXPECT_EQ(div.divide(x), x / d) << "x=" << x << " d=" << d;
      EXPECT_EQ(div.modulo(x), x % d) << "x=" << x << " d=" << d;
    }
  }
}

TEST(FastDiv, ExhaustiveSmallDivisorSweep) {
  // Every divisor up to 1024 against a dense low range plus the values that
  // straddle each multiple of the divisor near the top of the u32 range --
  // the places a wrong magic constant would first go off by one.
  for (std::uint32_t d = 1; d <= 1024; ++d) {
    const FastDiv32 div(d);
    for (std::uint32_t x = 0; x < 2 * d + 2; ++x) {
      ASSERT_EQ(div.divide(x), x / d) << "x=" << x << " d=" << d;
    }
    const std::uint32_t top = std::numeric_limits<std::uint32_t>::max();
    for (std::uint32_t x = top - 2 * d - 2; x < top; ++x) {
      ASSERT_EQ(div.divide(x), x / d) << "x=" << x << " d=" << d;
      ASSERT_EQ(div.modulo(x), x % d) << "x=" << x << " d=" << d;
    }
  }
}

TEST(FastDiv, DefaultConstructedDividesByOne) {
  const FastDiv32 div;
  EXPECT_EQ(div.divisor(), 1u);
  EXPECT_EQ(div.divide(12345u), 12345u);
  EXPECT_EQ(div.modulo(12345u), 0u);
}

TEST(FastDiv, RejectsUnsupportedDivisors) {
  EXPECT_THROW(FastDiv32(0), std::invalid_argument);
  EXPECT_THROW(FastDiv32(0x80000000u), std::invalid_argument);
  EXPECT_THROW(FastDiv32(std::numeric_limits<std::uint32_t>::max()),
               std::invalid_argument);
  EXPECT_NO_THROW(FastDiv32(0x7FFFFFFFu));
}

}  // namespace
