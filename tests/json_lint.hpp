// Minimal recursive-descent JSON well-formedness checker for tests. The
// observability layer hand-writes its JSON (no serialization library in the
// tree), so the trace/metrics tests validate every emitted byte stream parses
// as one complete JSON value. Not a general parser: it validates, it does not
// build a DOM.
#pragma once

#include <cctype>
#include <cstddef>
#include <string>

namespace oi::testing {

class JsonLint {
 public:
  /// True when `text` is exactly one well-formed JSON value (plus optional
  /// surrounding whitespace).
  static bool well_formed(const std::string& text) {
    JsonLint lint(text);
    lint.skip_ws();
    if (!lint.value()) return false;
    lint.skip_ws();
    return lint.pos_ == text.size();
  }

 private:
  explicit JsonLint(const std::string& text) : text_(text) {}

  bool value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') { ++pos_; return true; }
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
        const char esc = text_[pos_];
        if (esc == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= text_.size() || !std::isxdigit(static_cast<unsigned char>(text_[pos_]))) {
              return false;
            }
          }
        } else if (std::string("\"\\/bfnrt").find(esc) == std::string::npos) {
          return false;
        }
      }
      ++pos_;
    }
    return false;  // unterminated
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (!digits()) return false;
    if (peek() == '.') {
      ++pos_;
      if (!digits()) return false;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      if (!digits()) return false;
    }
    return pos_ > start;
  }

  bool digits() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool literal(const std::string& word) {
    if (text_.compare(pos_, word.size(), word) != 0) return false;
    pos_ += word.size();
    return true;
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace oi::testing
