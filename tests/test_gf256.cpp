#include "codes/gf256.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.hpp"

namespace oi::gf {
namespace {

TEST(Gf256, AddIsXor) {
  EXPECT_EQ(add(0x53, 0xCA), 0x53 ^ 0xCA);
  EXPECT_EQ(sub(0x53, 0xCA), add(0x53, 0xCA));
}

TEST(Gf256, MulIdentityAndZero) {
  for (unsigned a = 0; a < 256; ++a) {
    EXPECT_EQ(mul(static_cast<Byte>(a), 1), a);
    EXPECT_EQ(mul(1, static_cast<Byte>(a)), a);
    EXPECT_EQ(mul(static_cast<Byte>(a), 0), 0);
    EXPECT_EQ(mul(0, static_cast<Byte>(a)), 0);
  }
}

TEST(Gf256, MulCommutative) {
  Rng rng(1);
  for (int i = 0; i < 5000; ++i) {
    const auto a = static_cast<Byte>(rng.uniform_u64(256));
    const auto b = static_cast<Byte>(rng.uniform_u64(256));
    EXPECT_EQ(mul(a, b), mul(b, a));
  }
}

TEST(Gf256, MulAssociative) {
  Rng rng(2);
  for (int i = 0; i < 5000; ++i) {
    const auto a = static_cast<Byte>(rng.uniform_u64(256));
    const auto b = static_cast<Byte>(rng.uniform_u64(256));
    const auto c = static_cast<Byte>(rng.uniform_u64(256));
    EXPECT_EQ(mul(mul(a, b), c), mul(a, mul(b, c)));
  }
}

TEST(Gf256, MulDistributesOverAdd) {
  Rng rng(3);
  for (int i = 0; i < 5000; ++i) {
    const auto a = static_cast<Byte>(rng.uniform_u64(256));
    const auto b = static_cast<Byte>(rng.uniform_u64(256));
    const auto c = static_cast<Byte>(rng.uniform_u64(256));
    EXPECT_EQ(mul(a, add(b, c)), add(mul(a, b), mul(a, c)));
  }
}

TEST(Gf256, InverseRoundTrip) {
  for (unsigned a = 1; a < 256; ++a) {
    const Byte x = static_cast<Byte>(a);
    EXPECT_EQ(mul(x, inv(x)), 1) << "a=" << a;
    EXPECT_EQ(div(1, x), inv(x));
  }
}

TEST(Gf256, DivisionInvertsMultiplication) {
  Rng rng(4);
  for (int i = 0; i < 5000; ++i) {
    const auto a = static_cast<Byte>(rng.uniform_u64(256));
    const auto b = static_cast<Byte>(1 + rng.uniform_u64(255));
    EXPECT_EQ(div(mul(a, b), b), a);
  }
}

TEST(Gf256, DivByZeroThrows) {
  EXPECT_THROW(div(5, 0), std::invalid_argument);
  EXPECT_THROW(inv(0), std::invalid_argument);
}

TEST(Gf256, PowMatchesRepeatedMul) {
  for (unsigned a = 0; a < 256; ++a) {
    Byte acc = 1;
    for (unsigned e = 0; e < 10; ++e) {
      EXPECT_EQ(pow(static_cast<Byte>(a), e), acc) << "a=" << a << " e=" << e;
      acc = mul(acc, static_cast<Byte>(a));
    }
  }
}

TEST(Gf256, GeneratorHasFullOrder) {
  // alpha = 2 generates the multiplicative group: 255 distinct powers.
  std::vector<bool> seen(256, false);
  for (unsigned i = 0; i < 255; ++i) {
    const Byte x = exp(i);
    EXPECT_FALSE(seen[x]) << "repeat at i=" << i;
    seen[x] = true;
  }
  EXPECT_FALSE(seen[0]);
}

TEST(Gf256, MulAddAccumulates) {
  std::vector<Byte> dst{1, 2, 3, 4};
  const std::vector<Byte> src{5, 6, 7, 8};
  mul_add(dst, src, 0);  // no-op
  EXPECT_EQ(dst, (std::vector<Byte>{1, 2, 3, 4}));
  mul_add(dst, src, 1);  // xor
  EXPECT_EQ(dst, (std::vector<Byte>{1 ^ 5, 2 ^ 6, 3 ^ 7, 4 ^ 8}));
  std::vector<Byte> dst2{0, 0};
  const std::vector<Byte> src2{3, 9};
  mul_add(dst2, src2, 7);
  EXPECT_EQ(dst2[0], mul(3, 7));
  EXPECT_EQ(dst2[1], mul(9, 7));
}

TEST(Gf256, MulAssignScalesOrZeroes) {
  std::vector<Byte> dst{9, 9};
  const std::vector<Byte> src{3, 5};
  mul_assign(dst, src, 4);
  EXPECT_EQ(dst[0], mul(3, 4));
  EXPECT_EQ(dst[1], mul(5, 4));
  mul_assign(dst, src, 0);
  EXPECT_EQ(dst, (std::vector<Byte>{0, 0}));
}

TEST(Gf256, SizeMismatchThrows) {
  std::vector<Byte> dst{1};
  const std::vector<Byte> src{1, 2};
  EXPECT_THROW(mul_add(dst, src, 1), std::invalid_argument);
  EXPECT_THROW(xor_acc(dst, src), std::invalid_argument);
}

}  // namespace
}  // namespace oi::gf
