// StripeMap IR equivalence battery. The compiled IR replaced the virtual
// relations_of/locate/inspect walks in every hot path; the reference
// implementations (plan_by_peeling_virtual, check_relations_virtual) are kept
// verbatim so these tests can prove, for every geometry in the bench sweep,
// that the IR-backed paths produce *identical* results -- not merely
// equivalent ones. The Monte-Carlo determinism tests pin down the other half
// of the refactor: per-trial RNG streams make the parallel trial loop
// bit-identical at any thread count.
#include "layout/stripe_map.hpp"

#include <gtest/gtest.h>

#include <optional>
#include <sstream>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "layout/layout.hpp"
#include "reliability/monte_carlo.hpp"

namespace oi::layout {
namespace {

using bench::Geometry;
using bench::geometry_sweep;

std::string pattern_label(const std::vector<std::size_t>& failed, bool prefer_outer) {
  std::ostringstream os;
  os << "failed={";
  for (std::size_t i = 0; i < failed.size(); ++i) os << (i ? "," : "") << failed[i];
  os << "} prefer_outer=" << (prefer_outer ? "true" : "false");
  return os.str();
}

void expect_identical_plans(const std::optional<std::vector<RecoveryStep>>& ir,
                            const std::optional<std::vector<RecoveryStep>>& ref,
                            const std::string& context) {
  ASSERT_EQ(ir.has_value(), ref.has_value()) << context;
  if (!ir.has_value()) return;
  ASSERT_EQ(ir->size(), ref->size()) << context;
  for (std::size_t i = 0; i < ir->size(); ++i) {
    EXPECT_EQ((*ir)[i].lost, (*ref)[i].lost) << context << " step " << i;
    EXPECT_EQ((*ir)[i].reads, (*ref)[i].reads) << context << " step " << i;
  }
}

/// Failure patterns exercised per geometry: single, same-group pair,
/// cross-group pair, 2+1 triple, spread triple.
std::vector<std::vector<std::size_t>> failure_patterns(const Geometry& g) {
  const std::size_t m = g.m;
  return {{0},          {g.disks() / 3}, {0, 1},
          {0, m},       {0, 1, m},       {0, m, 2 * m}};
}

class StripeMapSweep : public ::testing::TestWithParam<Geometry> {};

TEST_P(StripeMapSweep, PlannerMatchesVirtualReferenceExactly) {
  const auto layout = bench::make_oi(GetParam(), 2);
  for (const auto& failed : failure_patterns(GetParam())) {
    for (bool prefer_outer : {true, false}) {
      expect_identical_plans(plan_by_peeling(layout, failed, prefer_outer),
                             plan_by_peeling_virtual(layout, failed, prefer_outer),
                             pattern_label(failed, prefer_outer));
    }
  }
}

TEST_P(StripeMapSweep, CheckRelationsMatchesVirtualReference) {
  const auto layout = bench::make_oi(GetParam(), 2);
  const std::string linear = check_relations(layout);
  const std::string quadratic = check_relations_virtual(layout);
  EXPECT_EQ(linear, quadratic);
  EXPECT_EQ(linear, "");
}

TEST_P(StripeMapSweep, IrValidatorAcceptsIrPlans) {
  const auto layout = bench::make_oi(GetParam(), 2);
  for (const auto& failed : failure_patterns(GetParam())) {
    const auto plan = layout.recovery_plan(failed);
    ASSERT_TRUE(plan.has_value()) << pattern_label(failed, true);
    EXPECT_EQ(check_recovery_plan(layout, failed, *plan), "")
        << pattern_label(failed, true);
  }
}

TEST_P(StripeMapSweep, StripeMapMirrorsVirtualApi) {
  const auto layout = bench::make_oi(GetParam(), 2);
  const StripeMap& map = layout.stripe_map();
  ASSERT_EQ(map.disks(), layout.disks());
  ASSERT_EQ(map.strips_per_disk(), layout.strips_per_disk());
  ASSERT_EQ(map.total_strips(), layout.total_strips());
  ASSERT_EQ(map.data_strips(), layout.data_strips());
  EXPECT_EQ(map.fault_tolerance(), layout.fault_tolerance());
  EXPECT_EQ(map.xor_semantics(), layout.xor_semantics());

  for (std::size_t logical = 0; logical < layout.data_strips(); ++logical) {
    EXPECT_EQ(map.strip_loc(map.locate(logical)), layout.locate(logical));
  }

  for (std::size_t d = 0; d < layout.disks(); ++d) {
    for (std::size_t o = 0; o < layout.strips_per_disk(); ++o) {
      const StripLoc loc{d, o};
      const std::uint32_t id = map.strip_id(loc);
      EXPECT_EQ(map.strip_loc(id), loc);
      EXPECT_EQ(map.disk_of(id), d);
      EXPECT_EQ(map.strip_info(id).role, layout.inspect(loc).role);

      // Occurrences must be relations_of, verbatim: same relation order,
      // same member order within each relation.
      const auto reported = layout.relations_of(loc);
      const auto occs = map.occurrences(id);
      ASSERT_EQ(occs.size(), reported.size()) << "disk " << d << " offset " << o;
      for (std::size_t i = 0; i < reported.size(); ++i) {
        EXPECT_EQ(map.occurrence_kind(occs[i]), reported[i].kind);
        const auto members = map.occurrence_members(occs[i]);
        ASSERT_EQ(members.size(), reported[i].strips.size());
        for (std::size_t j = 0; j < members.size(); ++j) {
          EXPECT_EQ(map.strip_loc(members[j]), reported[i].strips[j]);
        }
        const Relation round_trip = map.materialize(occs[i]);
        EXPECT_EQ(round_trip.kind, reported[i].kind);
        EXPECT_EQ(round_trip.strips, reported[i].strips);
      }

      // The preferred view is a permutation of the occurrences with
      // outer-kind relations first (stable within each kind).
      const auto preferred = map.preferred_occurrences(id);
      ASSERT_EQ(preferred.size(), occs.size());
      for (std::size_t i = 1; i < preferred.size(); ++i) {
        EXPECT_GE(static_cast<int>(map.occurrence_kind(preferred[i - 1])),
                  static_cast<int>(map.occurrence_kind(preferred[i])));
      }
    }
  }
}

TEST_P(StripeMapSweep, ReadLoadMatchesLayoutForm) {
  const auto layout = bench::make_oi(GetParam(), 2);
  const auto plan = layout.recovery_plan({0});
  ASSERT_TRUE(plan.has_value());
  const auto via_layout = per_disk_read_load(layout, {0}, *plan);
  const auto via_map = per_disk_read_load(layout.stripe_map(), {0}, *plan);
  EXPECT_EQ(via_layout, via_map);
}

INSTANTIATE_TEST_SUITE_P(GeometrySweep, StripeMapSweep,
                         ::testing::ValuesIn(geometry_sweep(true)),
                         [](const auto& info) { return info.param.label; });

TEST(StripeMapBaselines, PlannerEquivalenceForBaselineLayouts) {
  const Geometry fano = geometry_sweep(false)[0];
  const auto raid5 = bench::make_raid5(fano, 6);
  const auto raid50 = bench::make_raid50(fano, 6);
  const auto pd = bench::make_pd(fano, 6);
  std::vector<const Layout*> layouts{&raid5, &raid50};
  if (pd) layouts.push_back(&*pd);
  for (const Layout* layout : layouts) {
    for (const auto& failed :
         std::vector<std::vector<std::size_t>>{{0}, {0, 1}, {0, 3}}) {
      expect_identical_plans(plan_by_peeling(*layout, failed),
                             plan_by_peeling_virtual(*layout, failed),
                             layout->name() + " " + pattern_label(failed, true));
    }
    EXPECT_EQ(check_relations(*layout), check_relations_virtual(*layout))
        << layout->name();
  }
}

TEST(StripeMapCache, SharedAcrossCallsAndRebuiltAfterCopy) {
  const auto layout = bench::make_oi(geometry_sweep(false)[0], 2);
  const StripeMap& first = layout.stripe_map();
  const StripeMap& second = layout.stripe_map();
  EXPECT_EQ(&first, &second) << "cache must hand out the same compiled map";

  const auto copy = layout;
  const StripeMap& copied = copy.stripe_map();
  EXPECT_NE(&copied, &first) << "copies compile their own map";
  EXPECT_EQ(copied.total_strips(), first.total_strips());
}

TEST(MonteCarloParallel, BitIdenticalAcrossThreadCounts) {
  const auto layout = bench::make_oi(geometry_sweep(false)[0], 2);
  reliability::MonteCarloConfig config;
  config.mttf_hours = 10'000;
  config.rebuild_hours = 200;
  config.mission_hours = 20'000;
  config.trials = 600;
  config.seed = 31;
  config.lse_probability_per_repair = 0.05;

  config.threads = 1;
  const auto sequential = reliability::monte_carlo_reliability(layout, config);
  for (std::size_t threads : {2, 4, 7}) {
    config.threads = threads;
    const auto parallel = reliability::monte_carlo_reliability(layout, config);
    EXPECT_EQ(parallel.trials, sequential.trials) << threads << " threads";
    EXPECT_EQ(parallel.losses, sequential.losses) << threads << " threads";
    EXPECT_EQ(parallel.loss_probability, sequential.loss_probability)
        << threads << " threads";
    EXPECT_EQ(parallel.ci95, sequential.ci95) << threads << " threads";
    EXPECT_EQ(parallel.time_to_loss.count(), sequential.time_to_loss.count());
    EXPECT_EQ(parallel.time_to_loss.mean(), sequential.time_to_loss.mean());
    EXPECT_EQ(parallel.time_to_loss.sum(), sequential.time_to_loss.sum());
    EXPECT_EQ(parallel.time_to_loss.min(), sequential.time_to_loss.min());
    EXPECT_EQ(parallel.time_to_loss.max(), sequential.time_to_loss.max());
  }
}

TEST(MonteCarloParallel, DomainFailuresBitIdenticalAcrossThreadCounts) {
  const auto layout = bench::make_oi(geometry_sweep(false)[0], 2);
  reliability::MonteCarloConfig config;
  config.mttf_hours = 1.2e6;
  config.rebuild_hours = 24;
  config.mission_hours = 10 * 24 * 365.25;
  config.trials = 400;
  config.seed = 37;
  config.disks_per_domain = 3;
  config.domain_mttf_hours = 200'000;

  config.threads = 1;
  const auto sequential = reliability::monte_carlo_reliability(layout, config);
  config.threads = 4;
  const auto parallel = reliability::monte_carlo_reliability(layout, config);
  EXPECT_EQ(parallel.losses, sequential.losses);
  EXPECT_EQ(parallel.loss_probability, sequential.loss_probability);
  EXPECT_EQ(parallel.time_to_loss.count(), sequential.time_to_loss.count());
  EXPECT_EQ(parallel.time_to_loss.sum(), sequential.time_to_loss.sum());
}

}  // namespace
}  // namespace oi::layout
