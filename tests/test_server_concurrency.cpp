// Stress matrix for the striped data plane, designed to run under
// ThreadSanitizer (the tsan-oracle CI job builds this file with
// -fsanitize=thread). Two layers:
//
//   * A direct Array + DomainLockTable stress with no sockets: writer
//     threads racing a chaos thread that fails disks and drives batched,
//     domain-claiming rebuilds -- the exact locking protocol BlockServer's
//     rebuild_loop uses -- so TSan sees the raw synchronization, not just
//     whatever interleavings the network happens to produce.
//   * End-to-end TCP stress through a real BlockServer: disjoint writers
//     checked for read-your-writes and final-state equivalence against a
//     single-threaded replay, overlapping writers checked for write
//     atomicity on a contended strip, and writers racing a fail-disk and
//     the online rebuild thread.
#include "server/block_server.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <limits>
#include <map>
#include <memory>
#include <set>
#include <span>
#include <sstream>
#include <thread>
#include <vector>

#include "bibd/constructions.hpp"
#include "core/array.hpp"
#include "core/striped_lock.hpp"
#include "layout/oi_raid.hpp"
#include "server/persistent_array.hpp"
#include "server/protocol.hpp"
#include "util/rng.hpp"

namespace oi::server {
namespace {

constexpr std::size_t kStripBytes = 128;

std::shared_ptr<const layout::Layout> small_layout() {
  return std::make_shared<layout::OiRaidLayout>(
      layout::OiRaidParams{bibd::fano(), 3, 4});
}

std::vector<std::uint8_t> random_block(Rng& rng, std::size_t size) {
  std::vector<std::uint8_t> data(size);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.uniform_u64(256));
  return data;
}

// ------------------------------------------------- direct array stress ----

// Writer threads on disjoint strips (exclusive domain locks, read-your-writes
// after every write) racing a chaos thread that repeatedly fails a disk under
// the all-domain barrier and rebuilds it with per-batch domain claims. This
// is the server's locking discipline distilled to its synchronization
// skeleton; any missing happens-before edge in Array's bookkeeping is a TSan
// report here.
TEST(StripedArrayStress, WritersRaceFailDiskAndBatchedRebuild) {
  const auto layout = small_layout();
  core::Array array(layout, kStripBytes);
  const layout::StripeMap& stripes = layout->stripe_map();
  const layout::ConcurrencyMap& domains = layout->concurrency_map();
  core::DomainLockTable locks(domains);

  constexpr int kWriters = 4;
  constexpr int kRounds = 120;
  ASSERT_GE(array.capacity_strips(), static_cast<std::size_t>(kWriters));

  std::atomic<int> failures{0};
  std::atomic<bool> done{false};
  std::vector<std::vector<std::uint8_t>> last(kWriters);

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      Rng rng(1000 + static_cast<std::uint64_t>(w));
      const std::uint64_t offset = static_cast<std::uint64_t>(w) * kStripBytes;
      for (int round = 0; round < kRounds; ++round) {
        auto data = random_block(rng, kStripBytes);
        {
          auto guard = locks.lock_exclusive(core::domains_of_range(
              stripes, domains, offset, data.size(), kStripBytes));
          array.write_bytes(offset, data);
        }
        std::vector<std::uint8_t> back;
        {
          auto guard = locks.lock_shared(core::domains_of_range(
              stripes, domains, offset, data.size(), kStripBytes));
          back = array.read_bytes(offset, data.size());
        }
        if (back != data) {
          ++failures;
          return;
        }
        last[static_cast<std::size_t>(w)] = std::move(data);
      }
    });
  }

  // Chaos: fail one disk at a time and rebuild it with the server's batch
  // protocol (snapshot plan under the barrier, claim per-batch domains, bail
  // and replan when the watermark moved underneath us).
  std::thread chaos([&] {
    std::size_t next_disk = 0;
    while (!done.load(std::memory_order_acquire)) {
      std::size_t base = 0;
      std::vector<layout::RecoveryStep> pending;
      {
        auto barrier = locks.lock_all_exclusive();
        array.fail_disk(next_disk % layout->disks());
        array.rebuild_begin();
        base = array.rebuild_watermark();
        pending = array.peek_rebuild_steps(
            std::numeric_limits<std::size_t>::max());
      }
      ++next_disk;
      constexpr std::size_t kBatch = 4;
      for (std::size_t idx = 0; idx < pending.size();) {
        const std::size_t count = std::min(kBatch, pending.size() - idx);
        const std::span<const layout::RecoveryStep> batch(
            pending.data() + idx, count);
        auto guard = locks.lock_exclusive(
            core::domains_of_steps(stripes, domains, batch));
        if (!array.rebuild_active() ||
            array.rebuild_watermark() != base + idx) {
          break;  // a new failure invalidated the plan; outer loop replans
        }
        array.rebuild_step(count);
        idx += count;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  for (auto& t : writers) t.join();
  done.store(true, std::memory_order_release);
  chaos.join();

  EXPECT_EQ(failures.load(), 0);
  // Quiesce: finish any half-done rebuild single-threaded, then verify the
  // array is parity-clean and every writer's final payload survived.
  if (array.any_failed()) array.rebuild();
  EXPECT_EQ(array.scrub(), "");
  for (int w = 0; w < kWriters; ++w) {
    ASSERT_FALSE(last[static_cast<std::size_t>(w)].empty());
    EXPECT_EQ(array.read_bytes(static_cast<std::uint64_t>(w) * kStripBytes,
                               kStripBytes),
              last[static_cast<std::size_t>(w)])
        << "writer " << w;
  }
}

// ------------------------------------------------------- TCP end-to-end ----

std::map<std::string, std::string> parse_status(const std::string& text) {
  std::map<std::string, std::string> kv;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    const auto space = line.find(' ');
    if (space != std::string::npos) {
      kv[line.substr(0, space)] = line.substr(space + 1);
    }
  }
  return kv;
}

class ServerConcurrencyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    char tmpl[] = "/tmp/oi-server-conc-XXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr);
    dir_ = std::string(tmpl) + "/array";
    array_ = std::make_unique<PersistentArray>(
        dir_, layout::OiRaidLayout({bibd::fano(), 3, 4}), kStripBytes);
    BlockServerConfig config;
    config.request_threads = 4;
    server_ = std::make_unique<BlockServer>(*array_, config);
  }

  void TearDown() override {
    server_.reset();
    array_.reset();
  }

  void wait_for_rebuild(Client& client, int timeout_ms = 20000) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
    while (std::chrono::steady_clock::now() < deadline) {
      if (parse_status(client.status())["failed"].substr(0, 1) == "0") return;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    FAIL() << "rebuild did not finish within " << timeout_ms << " ms:\n"
           << client.status();
  }

  std::string dir_;
  std::unique_ptr<PersistentArray> array_;
  std::unique_ptr<BlockServer> server_;
};

struct RecordedWrite {
  std::uint64_t offset;
  std::vector<std::uint8_t> data;
};

// Disjoint writers: every round checks read-your-writes over the wire, and
// the final array state must be byte-identical to a single-threaded replay
// of the recorded operations -- with disjoint ranges, any true interleaving
// is equivalent to per-client program order, so divergence means a lost or
// torn write inside the striped plane.
TEST_F(ServerConcurrencyTest, DisjointWritersMatchSingleThreadedReplay) {
  constexpr int kClients = 4;
  constexpr int kRounds = 25;
  std::atomic<int> failures{0};
  std::vector<std::vector<RecordedWrite>> recorded(kClients);
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      try {
        Client client("127.0.0.1", server_->port());
        Rng rng(2000 + static_cast<std::uint64_t>(c));
        // Unaligned, multi-strip, disjoint: each client owns a 2-strip span.
        const std::uint64_t span = 2 * kStripBytes;
        const std::uint64_t base = static_cast<std::uint64_t>(c) * span;
        for (int round = 0; round < kRounds; ++round) {
          const std::uint64_t offset = base + rng.uniform_u64(kStripBytes / 2);
          auto data = random_block(
              rng, kStripBytes + static_cast<std::size_t>(
                                     rng.uniform_u64(kStripBytes / 2)));
          client.write(offset, data);
          if (client.read(offset, static_cast<std::uint32_t>(data.size())) !=
              data) {
            ++failures;
            return;
          }
          recorded[static_cast<std::size_t>(c)].push_back(
              {offset, std::move(data)});
        }
      } catch (...) {
        ++failures;
      }
    });
  }
  for (auto& t : threads) t.join();
  ASSERT_EQ(failures.load(), 0);

  core::Array golden(small_layout(), kStripBytes);
  for (const auto& ops : recorded) {
    for (const auto& op : ops) golden.write_bytes(op.offset, op.data);
  }
  Client client("127.0.0.1", server_->port());
  const auto capacity = array_->array().capacity_bytes();
  EXPECT_EQ(client.read(0, static_cast<std::uint32_t>(capacity)),
            golden.read_bytes(0, static_cast<std::size_t>(capacity)));
}

// Overlapping writers hammering one strip: the exclusive domain lock must
// make each RMW atomic, so the final strip is exactly one client's payload,
// never a byte-level interleaving.
TEST_F(ServerConcurrencyTest, ContendedStripWritesStayAtomic) {
  constexpr int kClients = 4;
  constexpr int kRounds = 30;
  const std::uint64_t offset = 3 * kStripBytes;  // one shared strip
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      try {
        Client client("127.0.0.1", server_->port());
        for (int round = 0; round < kRounds; ++round) {
          // Whole strip filled with a per-client marker byte: any torn write
          // shows up as a mixed-byte final state.
          const std::vector<std::uint8_t> data(
              kStripBytes, static_cast<std::uint8_t>(0xA0 + c));
          client.write(offset, data);
          // Concurrent reads must also see *some* client's complete payload.
          const auto seen = client.read(offset, kStripBytes);
          const std::set<std::uint8_t> bytes(seen.begin(), seen.end());
          if (bytes.size() != 1 || *bytes.begin() < 0xA0 ||
              *bytes.begin() >= 0xA0 + kClients) {
            ++failures;
            return;
          }
        }
      } catch (...) {
        ++failures;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
}

// The full collision: disjoint writers keep their read-your-writes guarantee
// while a disk fails mid-run and the server's rebuild thread races them for
// domain locks. Afterwards the array must match the single-threaded replay
// and be parity-clean -- online rebuild is invisible to correctness.
TEST_F(ServerConcurrencyTest, WritersRaceFailDiskAndOnlineRebuild) {
  constexpr int kClients = 4;
  constexpr int kRounds = 30;
  std::atomic<int> failures{0};
  std::vector<std::vector<RecordedWrite>> recorded(kClients);
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      try {
        Client client("127.0.0.1", server_->port());
        Rng rng(3000 + static_cast<std::uint64_t>(c));
        const std::uint64_t offset = static_cast<std::uint64_t>(c) * kStripBytes;
        for (int round = 0; round < kRounds; ++round) {
          auto data = random_block(rng, kStripBytes);
          client.write(offset, data);
          if (client.read(offset, kStripBytes) != data) {
            ++failures;
            return;
          }
          recorded[static_cast<std::size_t>(c)].push_back(
              {offset, std::move(data)});
        }
      } catch (...) {
        ++failures;
      }
    });
  }
  // Fail a disk while the writers are mid-flight.
  {
    Client admin("127.0.0.1", server_->port());
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    admin.fail_disk(2);
  }
  for (auto& t : threads) t.join();
  ASSERT_EQ(failures.load(), 0);

  Client client("127.0.0.1", server_->port());
  wait_for_rebuild(client);

  core::Array golden(small_layout(), kStripBytes);
  for (const auto& ops : recorded) {
    for (const auto& op : ops) golden.write_bytes(op.offset, op.data);
  }
  const auto capacity = array_->array().capacity_bytes();
  EXPECT_EQ(client.read(0, static_cast<std::uint32_t>(capacity)),
            golden.read_bytes(0, static_cast<std::size_t>(capacity)));
  EXPECT_EQ(array_->array().scrub(), "");
}

}  // namespace
}  // namespace oi::server
