// Thousand-disk scaling gates (ctest label `long`): the compact StripeMap
// and the sharded planner at the geometries the quick suite cannot afford.
// Each point checks the full chain: virtual reference == compact planner ==
// sharded planner (byte for byte), plan validity, and the compact IR's
// headline footprint criterion (>= 2x smaller than the flat encoding at
// v >= 365).
#include <memory>
#include <optional>
#include <vector>

#include <gtest/gtest.h>

#include "bibd/constructions.hpp"
#include "bibd/registry.hpp"
#include "layout/concurrency_map.hpp"
#include "layout/oi_raid.hpp"
#include "layout/sharded_plan.hpp"
#include "layout/stripe_map.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace oi;
using namespace oi::layout;

void expect_plans_identical(
    const std::optional<std::vector<RecoveryStep>>& expected,
    const std::optional<std::vector<RecoveryStep>>& actual) {
  ASSERT_EQ(expected.has_value(), actual.has_value());
  if (!expected.has_value()) return;
  ASSERT_EQ(expected->size(), actual->size());
  for (std::size_t i = 0; i < expected->size(); ++i) {
    ASSERT_EQ((*expected)[i].lost, (*actual)[i].lost) << "step " << i;
    ASSERT_EQ((*expected)[i].reads, (*actual)[i].reads) << "step " << i;
  }
}

void check_scale_point(bibd::Design design, std::size_t m, std::size_t h,
                       const std::vector<std::vector<std::size_t>>& patterns,
                       bool expect_halved) {
  const std::size_t v = design.v;
  const auto layout =
      std::make_shared<OiRaidLayout>(OiRaidParams{std::move(design), m, h});
  SCOPED_TRACE("v=" + std::to_string(v) +
               " disks=" + std::to_string(layout->disks()));
  const StripeMap& map = layout->stripe_map();
  const ConcurrencyMap& domains = layout->concurrency_map();
  if (expect_halved) {
    EXPECT_GE(map.uncompressed_resident_bytes(), 2 * map.resident_bytes());
  }
  ThreadPool pool(4);
  for (const auto& failed : patterns) {
    const auto reference = plan_by_peeling_virtual(*layout, failed);
    const auto compact = plan_by_peeling(map, failed);
    expect_plans_identical(reference, compact);
    expect_plans_identical(reference, plan_by_peeling_sharded(
                                          map, domains, pool, failed));
    ASSERT_TRUE(reference.has_value());
    EXPECT_EQ(check_recovery_plan(map, failed, *reference), "");
  }
}

// v = 367 (Skolem STS): 1101 disks -- the smallest admissible point past the
// issue's v >= 365 footprint bar.
TEST(ScaleLong, Sts367ElevenHundredDisks) {
  const auto design = bibd::find_design(367, 3);
  ASSERT_TRUE(design.has_value());
  check_scale_point(*design, 3, 2, {{0}, {0, 550, 1100}}, true);
}

// v = 1024 (AG(2,32), k = 32): 3072 disks with wide outer relations.
TEST(ScaleLong, Ag32ThreeThousandDisks) {
  const auto design = bibd::affine_plane(32);
  ASSERT_EQ(design.v, 1024u);
  check_scale_point(design, 3, 2, {{0}, {1, 2048}}, true);
}

// v = 1093 (STS): 3279 disks, the thousand-point Steiner system.
TEST(ScaleLong, Sts1093ThreeThousandDisks) {
  const auto design = bibd::find_design(1093, 3);
  ASSERT_TRUE(design.has_value());
  check_scale_point(*design, 3, 2, {{0}}, true);
}

}  // namespace
