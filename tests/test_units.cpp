#include "util/units.hpp"

#include <gtest/gtest.h>

namespace oi {
namespace {

TEST(Units, FormatBytes) {
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(2048), "2.00 KiB");
  EXPECT_EQ(format_bytes(3.5 * static_cast<double>(kMiB)), "3.50 MiB");
  EXPECT_EQ(format_bytes(static_cast<double>(kGiB)), "1.00 GiB");
  EXPECT_EQ(format_bytes(2.0 * static_cast<double>(kTiB)), "2.00 TiB");
}

TEST(Units, FormatSeconds) {
  EXPECT_EQ(format_seconds(0.000002), "2.00 us");
  EXPECT_EQ(format_seconds(0.005), "5.00 ms");
  EXPECT_EQ(format_seconds(2.5), "2.50 s");
  EXPECT_EQ(format_seconds(90.0), "1.50 min");
  EXPECT_EQ(format_seconds(7200.0), "2.00 h");
  EXPECT_EQ(format_seconds(2.0 * kDay), "2.00 d");
  EXPECT_EQ(format_seconds(3.0 * kYear), "3.00 y");
}

TEST(Units, FormatBandwidth) {
  EXPECT_EQ(format_bandwidth(100.0 * static_cast<double>(kMiB)), "100.00 MiB/s");
}

TEST(Units, Constants) {
  EXPECT_EQ(kMiB, 1024u * 1024u);
  EXPECT_DOUBLE_EQ(kYear, 365.25 * 24 * 3600);
}

}  // namespace
}  // namespace oi
