// Per-tenant QoS sensors and the AIMD rebuild-rate controller
// (server/qos.hpp): histogram recording and interval quantiles, the tenant
// table's default-slot fallback, and the controller's convergence behaviour
// driven through its deterministic update() core.
#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

#include "server/qos.hpp"

namespace oi::server {
namespace {

constexpr double kMiB = 1024.0 * 1024.0;

TEST(TenantSensorsTest, RecordsIntoBucketsAndCounters) {
  TenantSensors sensors({1, "t", 1000.0});
  sensors.record(50.0, /*is_write=*/false, 4096);
  sensors.record(150.0, /*is_write=*/false, 4096);
  sensors.record(150.0, /*is_write=*/true, 8192);
  sensors.record(1e9, /*is_write=*/false, 1);   // clamps to last bucket
  sensors.record(-5.0, /*is_write=*/false, 1);  // clamps to bucket 0
  const auto snap = sensors.snapshot();
  EXPECT_EQ(snap.total, 5u);
  EXPECT_EQ(snap.counts[0], 1u);
  EXPECT_EQ(snap.counts[TenantSensors::bucket_index(50.0)], 1u);
  EXPECT_EQ(snap.counts[TenantSensors::bucket_index(150.0)], 2u);
  EXPECT_EQ(snap.counts[TenantSensors::kBuckets - 1], 1u);
  // Log spacing: 50 us and 150 us land in distinct non-edge buckets.
  EXPECT_NE(TenantSensors::bucket_index(50.0), 0u);
  EXPECT_NE(TenantSensors::bucket_index(50.0), TenantSensors::bucket_index(150.0));
  EXPECT_LT(TenantSensors::bucket_index(150.0), TenantSensors::kBuckets - 1);
  EXPECT_EQ(sensors.ops(), 5u);
  EXPECT_EQ(sensors.read_bytes(), 4096u + 4096u + 1u + 1u);
  EXPECT_EQ(sensors.write_bytes(), 8192u);
}

TEST(TenantSensorsTest, LogBucketsResolveTheTail) {
  // The regression the log geometry fixes: under the old 100 us x 256 grid,
  // everything past 25.6 ms clamped into one bucket, so a 30 ms and a 5 s
  // request were indistinguishable. Now they are.
  EXPECT_NE(TenantSensors::bucket_index(30e3), TenantSensors::bucket_index(5e6));
  // And the edges line up with the shared metrics geometry.
  EXPECT_EQ(TenantSensors::bucket_uppers().size(), TenantSensors::kBuckets);
  EXPECT_DOUBLE_EQ(TenantSensors::bucket_uppers().back(), metrics::kLatencyHighUs);
}

TEST(TenantSensorsTest, IntervalQuantileUsesOnlyTheDelta) {
  TenantSensors sensors({1, "t", 0.0});
  // First interval: all fast.
  for (int i = 0; i < 100; ++i) sensors.record(50.0, false, 1);
  const auto first = sensors.snapshot();
  // Second interval: all slow. The interval quantile must see only these.
  for (int i = 0; i < 100; ++i) sensors.record(5050.0, false, 1);
  const auto second = sensors.snapshot();
  const double p99 = TenantSensors::interval_quantile(second, first, 0.99);
  // The interpolated p99 stays inside the (log-spaced) bucket holding 5050 us.
  const auto& uppers = TenantSensors::bucket_uppers();
  const std::size_t slow = TenantSensors::bucket_index(5050.0);
  EXPECT_GE(p99, uppers[slow - 1]);
  EXPECT_LE(p99, uppers[slow]);
  // Cumulative (prev = zeroes) sees both halves: the median sits in the fast
  // bucket, the p99 in the slow one.
  const double cumulative_p50 =
      TenantSensors::interval_quantile(second, TenantSensors::Snapshot{}, 0.50);
  EXPECT_LT(cumulative_p50, 200.0);
  // Empty interval reports 0 (the controller treats it as idle/headroom).
  EXPECT_EQ(TenantSensors::interval_quantile(second, second, 0.99), 0.0);
}

TEST(TenantSensorsTest, QuantileInterpolatesWithinBucket) {
  TenantSensors sensors({1, "t", 0.0});
  for (int i = 0; i < 100; ++i) sensors.record(150.0, false, 1);
  const auto snap = sensors.snapshot();
  const double p50 =
      TenantSensors::interval_quantile(snap, TenantSensors::Snapshot{}, 0.50);
  // All mass in one bucket: any interpolated quantile stays inside its edges.
  const auto& uppers = TenantSensors::bucket_uppers();
  const std::size_t bucket = TenantSensors::bucket_index(150.0);
  EXPECT_GE(p50, uppers[bucket - 1]);
  EXPECT_LE(p50, uppers[bucket]);
}

TEST(TenantTableTest, DefaultSlotAndFallback) {
  TenantTable table({{1, "lat", 1000.0}, {2, "bulk", 0.0}});
  // Declared tenants plus the implicit untagged default slot.
  EXPECT_EQ(table.size(), 3u);
  EXPECT_EQ(table.sensors(1).config().name, "lat");
  EXPECT_EQ(table.sensors(2).config().name, "bulk");
  // Untagged and undeclared ids land in the default slot, not a crash.
  TenantSensors& untagged = table.sensors(0);
  TenantSensors& stray = table.sensors(4242);
  EXPECT_EQ(&untagged, &stray);
  stray.record(100.0, false, 1);
  EXPECT_EQ(untagged.ops(), 1u);
}

TEST(TenantTableTest, ExplicitDefaultSlotIsNotDuplicated) {
  TenantTable table({{0, "legacy", 500.0}, {1, "lat", 1000.0}});
  EXPECT_EQ(table.size(), 2u);
  EXPECT_EQ(table.sensors(0).config().name, "legacy");
  EXPECT_EQ(table.sensors(0).config().slo_p99_us, 500.0);
}

RebuildControllerConfig test_config() {
  RebuildControllerConfig config;
  config.min_bytes_per_second = 1.0 * kMiB;
  config.max_bytes_per_second = 1024.0 * kMiB;
  config.initial_bytes_per_second = 256.0 * kMiB;
  config.increase_bytes_per_second = 32.0 * kMiB;
  config.decrease_factor = 0.5;
  config.headroom = 0.8;
  config.interval_ms = 10;
  return config;
}

std::vector<TenantObservation> violated() {
  return {{2000.0, 1000.0, 100}};  // p99 2x the SLO
}

std::vector<TenantObservation> comfortable() {
  return {{300.0, 1000.0, 100}};  // p99 well under headroom * slo
}

TEST(RebuildControllerTest, ViolationDecreasesWithinFewIntervals) {
  TenantTable table({{1, "lat", 1000.0}});
  RebuildController controller(test_config(), table);
  const double initial = controller.rate();
  double rate = initial;
  for (int i = 0; i < 3; ++i) rate = controller.update(violated());
  // Multiplicative decrease: 3 violated intervals = rate / 8.
  EXPECT_NEAR(rate, initial / 8.0, 1.0);
  EXPECT_EQ(controller.violations(), 3u);
  EXPECT_EQ(controller.decisions(), 3u);
}

TEST(RebuildControllerTest, DecreaseFloorsAtMin) {
  TenantTable table({{1, "lat", 1000.0}});
  RebuildController controller(test_config(), table);
  for (int i = 0; i < 100; ++i) controller.update(violated());
  EXPECT_EQ(controller.rate(), test_config().min_bytes_per_second);
  // Rebuild always makes progress: the floor is positive.
  EXPECT_GT(controller.rate(), 0.0);
}

TEST(RebuildControllerTest, HeadroomRecoversToMaxAdditively) {
  TenantTable table({{1, "lat", 1000.0}});
  RebuildController controller(test_config(), table);
  for (int i = 0; i < 100; ++i) controller.update(violated());
  const double floor = controller.rate();
  double rate = floor;
  rate = controller.update(comfortable());
  EXPECT_NEAR(rate, floor + test_config().increase_bytes_per_second, 1.0);
  for (int i = 0; i < 1000; ++i) rate = controller.update(comfortable());
  EXPECT_EQ(rate, test_config().max_bytes_per_second);
}

TEST(RebuildControllerTest, HysteresisBandHolds) {
  TenantTable table({{1, "lat", 1000.0}});
  RebuildController controller(test_config(), table);
  const double initial = controller.rate();
  // p99 between headroom*slo (800) and slo (1000): neither violated nor
  // comfortable -- the rate must hold, else the loop limit-cycles.
  for (int i = 0; i < 50; ++i) controller.update({{900.0, 1000.0, 100}});
  EXPECT_EQ(controller.rate(), initial);
  EXPECT_EQ(controller.violations(), 0u);
}

TEST(RebuildControllerTest, BestEffortAndIdleTenantsCountAsHeadroom) {
  TenantTable table({{1, "lat", 1000.0}, {2, "bulk", 0.0}});
  RebuildController controller(test_config(), table);
  const double initial = controller.rate();
  // A best-effort tenant (slo 0) over any latency, and an idle SLO'd tenant:
  // neither may block the additive increase.
  const double rate =
      controller.update({{50000.0, 0.0, 100}, {0.0, 1000.0, 0}});
  EXPECT_NEAR(rate, initial + test_config().increase_bytes_per_second, 1.0);
  EXPECT_EQ(controller.violations(), 0u);
}

TEST(RebuildControllerTest, ConvergesUnderProportionalPlant) {
  // Synthetic plant: tenant p99 grows linearly with the rebuild rate. The
  // loop must settle into a band around the SLO crossing and stay there.
  TenantTable table({{1, "lat", 1000.0}});
  RebuildController controller(test_config(), table);
  const double us_per_mib = 1000.0 / 128.0;  // SLO crossed at 128 MiB/s
  double rate = controller.rate();
  for (int i = 0; i < 200; ++i) {
    const double p99 = (rate / kMiB) * us_per_mib;
    rate = controller.update({{p99, 1000.0, 100}});
  }
  // Settled: between the headroom edge and one decrease below the crossing.
  EXPECT_GE(rate, 0.5 * 128.0 * kMiB * 0.8);
  EXPECT_LE(rate, 160.0 * kMiB);
  EXPECT_GT(controller.violations(), 0u);
}

TEST(RebuildControllerTest, InitialRateClampsAndConfigValidates) {
  TenantTable table({{1, "lat", 1000.0}});
  RebuildControllerConfig config = test_config();
  config.initial_bytes_per_second = 4096.0 * kMiB;  // above max
  RebuildController high(config, table);
  EXPECT_EQ(high.rate(), config.max_bytes_per_second);
  config.initial_bytes_per_second = 0.0;  // below min
  RebuildController low(config, table);
  EXPECT_EQ(low.rate(), config.min_bytes_per_second);

  config = test_config();
  config.min_bytes_per_second = 0.0;
  EXPECT_THROW(RebuildController(config, table), std::invalid_argument);
  config = test_config();
  config.max_bytes_per_second = config.min_bytes_per_second / 2.0;
  EXPECT_THROW(RebuildController(config, table), std::invalid_argument);
  config = test_config();
  config.decrease_factor = 1.0;
  EXPECT_THROW(RebuildController(config, table), std::invalid_argument);
  config = test_config();
  config.headroom = 0.0;
  EXPECT_THROW(RebuildController(config, table), std::invalid_argument);
  config = test_config();
  config.interval_ms = 0;
  EXPECT_THROW(RebuildController(config, table), std::invalid_argument);
}

TEST(RebuildControllerTest, MaybeTickReadsLiveSensors) {
  TenantTable table({{1, "lat", 1000.0}});
  auto config = test_config();
  config.interval_ms = 1;
  RebuildController controller(config, table);
  const double initial = controller.rate();
  // Feed the sensors a violating interval, let the control interval elapse.
  for (int i = 0; i < 100; ++i) table.sensors(1).record(5000.0, false, 1);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  controller.maybe_tick();
  EXPECT_LT(controller.rate(), initial);
  EXPECT_GE(controller.violations(), 1u);
}

TEST(RebuildControllerTest, PaceHonorsCancel) {
  TenantTable table({{1, "lat", 1000.0}});
  auto config = test_config();
  config.min_bytes_per_second = 1024.0;  // 1 KiB/s: pacing 10 MiB would take hours
  config.max_bytes_per_second = 1024.0;
  config.initial_bytes_per_second = 1024.0;
  RebuildController controller(config, table);
  std::atomic<bool> cancel{false};
  std::thread canceller([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    cancel.store(true, std::memory_order_release);
  });
  const auto start = std::chrono::steady_clock::now();
  controller.pace(10u << 20, cancel);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  canceller.join();
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed).count(),
            2000);
}

}  // namespace
}  // namespace oi::server
