// Crash-recovery tests for server::PersistentArray. The CrashHook throws at
// injected points inside superblock slot writes, simulating a kill between
// any two durability steps; each scenario then reopens the directory with a
// fresh PersistentArray and asserts the invariants the data plane relies on:
//
//   * a crash during fail_disk leaves either the old (healthy) or the new
//     (failed) state -- both safe, because the state persists *before* the
//     disk is poisoned;
//   * a crash between rebuild checkpoints resumes from the persisted
//     watermark (never past it), and finishing the rebuild yields a clean
//     scrub and every byte previously written;
//   * the array never serves stale parity: reads after any reopen match the
//     golden data exactly, even for strips the torn rebuild had not yet
//     durably covered.
#include "server/persistent_array.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <stdexcept>
#include <vector>

#include "bibd/constructions.hpp"
#include "util/rng.hpp"

namespace oi::server {
namespace {

constexpr std::size_t kStripBytes = 64;

layout::OiRaidLayout small_layout() {
  return layout::OiRaidLayout({bibd::fano(), 3, 4});
}

struct InjectedCrash : std::runtime_error {
  InjectedCrash() : std::runtime_error("injected crash") {}
};

class PersistentArrayTest : public ::testing::Test {
 protected:
  void SetUp() override {
    char tmpl[] = "/tmp/oi-parray-XXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr);
    dir_ = std::string(tmpl) + "/array";
  }

  /// Writes a deterministic pattern to every logical strip and records it.
  void fill(PersistentArray& pa) {
    Rng rng(99);
    for (std::size_t l = 0; l < pa.array().capacity_strips(); ++l) {
      std::vector<std::uint8_t> data(kStripBytes);
      for (auto& b : data) b = static_cast<std::uint8_t>(rng.uniform_u64(256));
      pa.array().write(l, data);
      golden_[l] = std::move(data);
    }
    pa.sync();
  }

  void expect_all_golden(PersistentArray& pa) {
    for (const auto& [logical, data] : golden_) {
      ASSERT_EQ(pa.array().read(logical), data) << "logical " << logical;
    }
  }

  std::string dir_;
  std::map<std::size_t, std::vector<std::uint8_t>> golden_;
};

TEST_F(PersistentArrayTest, CreateCloseReopenServesTheSameBytes) {
  {
    PersistentArray pa(dir_, small_layout(), kStripBytes);
    EXPECT_EQ(pa.state().epoch, 0u);
    fill(pa);
  }
  ASSERT_TRUE(PersistentArray::exists(dir_));
  PersistentArray reopened(dir_);
  EXPECT_TRUE(reopened.state().failed_disks.empty());
  EXPECT_EQ(reopened.state().strip_bytes, kStripBytes);
  expect_all_golden(reopened);
  EXPECT_EQ(reopened.array().scrub(), "");
}

TEST_F(PersistentArrayTest, RefusesToCreateOverAnExistingArray) {
  { PersistentArray pa(dir_, small_layout(), kStripBytes); }
  EXPECT_THROW(PersistentArray(dir_, small_layout(), kStripBytes),
               std::invalid_argument);
  EXPECT_THROW(PersistentArray("/tmp/definitely-not-an-array-dir"),
               std::invalid_argument);
}

TEST_F(PersistentArrayTest, FailDiskPersistsBeforePoisoning) {
  { PersistentArray pa(dir_, small_layout(), kStripBytes); }
  for (const std::string crash_point : {"slot-open", "slot-partial"}) {
    PersistentArray pa(dir_);
    fill(pa);
    pa.set_crash_hook([&](const std::string& point) {
      if (point == crash_point) throw InjectedCrash();
    });
    EXPECT_THROW(pa.fail_disk(2), InjectedCrash) << crash_point;
    // The torn slot must not win: reopening sees the previous (healthy)
    // state, and the disk bytes are intact because poisoning never ran.
    PersistentArray reopened(dir_);
    EXPECT_TRUE(reopened.state().failed_disks.empty()) << crash_point;
    EXPECT_EQ(reopened.array().scrub(), "") << crash_point;
    expect_all_golden(reopened);
  }
}

TEST_F(PersistentArrayTest, CrashAfterSlotSyncKeepsTheFailureDurable) {
  {
    PersistentArray pa(dir_, small_layout(), kStripBytes);
    fill(pa);
    pa.set_crash_hook([](const std::string& point) {
      if (point == "slot-synced") throw InjectedCrash();
    });
    // The superblock landed (fsync done) before the hook fired, so the
    // failure is durable even though the caller saw an exception.
    EXPECT_THROW(pa.fail_disk(2), InjectedCrash);
  }
  PersistentArray reopened(dir_);
  ASSERT_EQ(reopened.state().failed_disks, std::vector<std::size_t>{2});
  // The disk was never poisoned in that process, and restore() treats
  // non-rebuilt strips as lost regardless -- reads must still all decode.
  expect_all_golden(reopened);
  // Rebuild to completion clears the failure durably.
  while (!reopened.state().failed_disks.empty()) {
    reopened.rebuild_step(4);
  }
  EXPECT_EQ(reopened.array().scrub(), "");
  PersistentArray healthy(dir_);
  EXPECT_TRUE(healthy.state().failed_disks.empty());
}

TEST_F(PersistentArrayTest, ReopenResumesTheRebuildWatermark) {
  std::size_t watermark = 0;
  std::size_t total = 0;
  {
    PersistentArray pa(dir_, small_layout(), kStripBytes);
    fill(pa);
    pa.fail_disk(1);
    // Apply a strict prefix of the plan, then "crash" (drop the object).
    pa.rebuild_step(1);
    watermark = pa.state().rebuild_watermark;
    total = pa.array().rebuild_total_steps();
    ASSERT_GT(watermark, 0u);
    ASSERT_LT(watermark, total);
  }
  PersistentArray resumed(dir_);
  ASSERT_EQ(resumed.state().failed_disks, std::vector<std::size_t>{1});
  EXPECT_EQ(resumed.state().rebuild_watermark, watermark);
  EXPECT_TRUE(resumed.array().rebuild_active());
  EXPECT_EQ(resumed.array().rebuild_watermark(), watermark);
  EXPECT_EQ(resumed.array().rebuild_total_steps(), total);
  // Data stays fully readable mid-resume, then the rebuild finishes.
  expect_all_golden(resumed);
  while (!resumed.state().failed_disks.empty()) {
    resumed.rebuild_step(2);
  }
  EXPECT_EQ(resumed.array().scrub(), "");
  expect_all_golden(resumed);
}

TEST_F(PersistentArrayTest, CrashAtEveryRebuildCheckpointNeverServesStaleParity) {
  {
    PersistentArray pa(dir_, small_layout(), kStripBytes);
    fill(pa);
    pa.fail_disk(0);
  }
  // Walk the rebuild forward one checkpoint at a time; at each checkpoint,
  // crash at each injection point, reopen, and verify the full invariant
  // set. The watermark must never move backward and never jump past what a
  // completed checkpoint persisted.
  for (const std::string crash_point : {"slot-open", "slot-partial"}) {
    std::size_t last_watermark = 0;
    bool done = false;
    int guard = 0;
    while (!done && ++guard < 64) {
      PersistentArray pa(dir_);
      last_watermark = pa.state().rebuild_watermark;
      pa.set_crash_hook([&](const std::string& point) {
        if (point == crash_point) throw InjectedCrash();
      });
      try {
        pa.rebuild_step(2);
        done = pa.state().failed_disks.empty();
      } catch (const InjectedCrash&) {
        // Data strips may have been rebuilt and flushed, but the watermark
        // publish tore; the persisted state must still be the old one.
      }
      PersistentArray reopened(dir_);
      EXPECT_EQ(reopened.state().rebuild_watermark, last_watermark)
          << crash_point;
      expect_all_golden(reopened);
      if (reopened.state().failed_disks.empty()) done = true;
      // Clear the hook's effect by finishing one clean checkpoint so the
      // loop makes progress.
      if (!done) {
        reopened.rebuild_step(2);
        done = reopened.state().failed_disks.empty();
      }
    }
    ASSERT_TRUE(done) << crash_point << ": rebuild did not converge";
    PersistentArray final_check(dir_);
    EXPECT_TRUE(final_check.state().failed_disks.empty()) << crash_point;
    EXPECT_EQ(final_check.array().scrub(), "") << crash_point;
    expect_all_golden(final_check);
    // Re-fail for the next crash point iteration.
    if (crash_point == std::string("slot-open")) {
      PersistentArray refail(dir_);
      refail.fail_disk(0);
    }
  }
}

TEST_F(PersistentArrayTest, WritesDuringAResumedRebuildStayDurable) {
  {
    PersistentArray pa(dir_, small_layout(), kStripBytes);
    fill(pa);
    pa.fail_disk(3);
    pa.rebuild_step(2);
  }
  {
    PersistentArray pa(dir_);
    // Overwrite some strips mid-rebuild (write-through to rebuilt strips,
    // reconstruct-on-write to still-lost ones), then crash without finishing.
    Rng rng(7);
    for (std::size_t l = 0; l < pa.array().capacity_strips(); l += 3) {
      std::vector<std::uint8_t> data(kStripBytes);
      for (auto& b : data) b = static_cast<std::uint8_t>(rng.uniform_u64(256));
      pa.array().write(l, data);
      golden_[l] = std::move(data);
    }
    pa.sync();
  }
  PersistentArray resumed(dir_);
  expect_all_golden(resumed);
  while (!resumed.state().failed_disks.empty()) {
    resumed.rebuild_step(5);
  }
  EXPECT_EQ(resumed.array().scrub(), "");
  expect_all_golden(resumed);
}

}  // namespace
}  // namespace oi::server
