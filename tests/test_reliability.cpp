#include <gtest/gtest.h>

#include <cmath>

#include "bibd/constructions.hpp"
#include "layout/oi_raid.hpp"
#include "layout/parity_declustering.hpp"
#include "layout/raid5.hpp"
#include "layout/raid50.hpp"
#include "reliability/ctmc.hpp"
#include "reliability/models.hpp"
#include "reliability/monte_carlo.hpp"
#include "reliability/oracle.hpp"

namespace oi::reliability {
namespace {

TEST(CtmcTest, PureDeathChainIsExponentialMean) {
  Ctmc chain(2);
  chain.add_rate(0, 1, 0.25);
  EXPECT_NEAR(chain.expected_absorption_time(0, {1}), 4.0, 1e-12);
}

TEST(CtmcTest, AbsorptionProbabilityMatchesExponential) {
  Ctmc chain(2);
  const double rate = 0.1;
  chain.add_rate(0, 1, rate);
  for (double t : {0.0, 1.0, 5.0, 20.0}) {
    EXPECT_NEAR(chain.absorption_probability(0, {1}, t), 1.0 - std::exp(-rate * t),
                1e-9)
        << "t=" << t;
  }
}

TEST(CtmcTest, Raid5ClosedFormMatches) {
  // Classic result: MTTDL_RAID5 = ((2n-1)lambda + mu) / (n(n-1) lambda^2).
  const std::size_t n = 8;
  DiskReliabilityParams params;
  params.mttf_hours = 100000;
  params.rebuild_hours = 24;
  const double lambda = params.failure_rate();
  const double mu = params.repair_rate();
  const double nn = static_cast<double>(n);
  const double closed_form = ((2 * nn - 1) * lambda + mu) / (nn * (nn - 1) * lambda * lambda);
  EXPECT_NEAR(mttdl_raid5(n, params) / closed_form, 1.0, 1e-9);
}

TEST(CtmcTest, StartingAbsorbedIsZeroTimeProbabilityOne) {
  Ctmc chain(3);
  chain.add_rate(0, 1, 1.0);
  chain.add_rate(1, 2, 1.0);
  EXPECT_DOUBLE_EQ(chain.expected_absorption_time(2, {2}), 0.0);
  EXPECT_DOUBLE_EQ(chain.absorption_probability(2, {2}, 5.0), 1.0);
}

TEST(CtmcTest, UnreachableAbsorptionThrows) {
  Ctmc chain(3);
  chain.add_rate(0, 1, 1.0);
  chain.add_rate(1, 0, 1.0);  // 2 unreachable
  EXPECT_THROW(chain.expected_absorption_time(0, {2}), std::invalid_argument);
}

TEST(CtmcTest, Validation) {
  EXPECT_THROW(Ctmc(1), std::invalid_argument);
  Ctmc chain(2);
  EXPECT_THROW(chain.add_rate(0, 0, 1.0), std::invalid_argument);
  EXPECT_THROW(chain.add_rate(0, 1, -1.0), std::invalid_argument);
  EXPECT_THROW(chain.add_rate(5, 1, 1.0), std::invalid_argument);
  chain.add_rate(0, 1, 1.0);
  EXPECT_THROW(chain.expected_absorption_time(0, {}), std::invalid_argument);
  EXPECT_THROW(chain.absorption_probability(0, {1}, -1.0), std::invalid_argument);
}

TEST(Models, ToleranceOrdering) {
  DiskReliabilityParams params;
  const std::size_t n = 21;
  const double raid5 = mttdl_raid5(n, params);
  const double raid6 = mttdl_raid6(n, params);
  const double oi = mttdl_oi_raid(n, params);
  EXPECT_GT(raid6, 100.0 * raid5);
  EXPECT_GT(oi, 100.0 * raid6);
}

TEST(Models, FasterRebuildImprovesMttdl) {
  DiskReliabilityParams slow;
  slow.rebuild_hours = 24.0;
  DiskReliabilityParams fast = slow;
  fast.rebuild_hours = 4.0;  // the OI-RAID speedup effect
  EXPECT_GT(mttdl_oi_raid(21, fast), mttdl_oi_raid(21, slow));
  // For a 3-fault-tolerant chain, MTTDL ~ mu^3, so 6x faster rebuild buys
  // roughly 216x; allow slack for the lambda terms.
  EXPECT_GT(mttdl_oi_raid(21, fast) / mttdl_oi_raid(21, slow), 100.0);
}

TEST(Models, BenignFourthFailureFractionHelps) {
  DiskReliabilityParams params;
  const double all_fatal = mttdl_oi_raid(21, params, 1.0);
  const double half_fatal = mttdl_oi_raid(21, params, 0.5);
  EXPECT_NEAR(half_fatal / all_fatal, 2.0, 0.05);  // ~linear in this regime
  EXPECT_THROW(mttdl_oi_raid(21, params, 1.5), std::invalid_argument);
}

TEST(Models, ExtremeRateRatiosStayPositiveAndMonotone) {
  // Regression: the naive Gaussian solve returned *negative* MTTDL for
  // 3-fault-tolerant chains when repairs are ~7 orders faster than failures
  // (catastrophic cancellation); the birth-death recurrence must not.
  DiskReliabilityParams params;
  params.mttf_hours = 1.2e6;
  double previous = 0.0;
  for (const double rebuild : {96.0, 24.0, 6.0, 1.16, 0.2}) {
    DiskReliabilityParams p = params;
    p.rebuild_hours = rebuild;
    const double mttdl = mttdl_oi_raid(21, p, 0.0152);
    EXPECT_GT(mttdl, 0.0) << "rebuild=" << rebuild;
    EXPECT_GT(mttdl, previous) << "rebuild=" << rebuild;
    previous = mttdl;
    const double with_lse = mttdl_t_tolerant_lse(21, 3, p, 1e-3, 0.0152);
    EXPECT_GT(with_lse, 0.0);
    EXPECT_LT(with_lse, mttdl);
  }
}

TEST(Models, RecurrenceMatchesGeneralSolverWhereStable) {
  // In well-conditioned regimes the stable recurrence and the generic CTMC
  // solve must agree to high precision (raid6 at moderate rates).
  DiskReliabilityParams params;
  params.mttf_hours = 50'000;
  params.rebuild_hours = 100;
  Ctmc chain(4);
  const double lambda = params.failure_rate();
  const double mu = params.repair_rate();
  chain.add_rate(0, 1, 12 * lambda);
  chain.add_rate(1, 2, 11 * lambda);
  chain.add_rate(2, 3, 10 * lambda);
  chain.add_rate(1, 0, mu);
  chain.add_rate(2, 1, 2 * mu);
  EXPECT_NEAR(mttdl_raid6(12, params) / chain.expected_absorption_time(0, {3}), 1.0,
              1e-9);
}

TEST(Models, GroupCompositionDividesMttdl) {
  DiskReliabilityParams params;
  EXPECT_NEAR(mttdl_raid50(7, 3, params), mttdl_raid5(3, params) / 7.0, 1e-6);
  EXPECT_NEAR(mttdl_replication(4, 3, params),
              mttdl_t_tolerant(3, 2, params) / 4.0, 1e-6);
}

TEST(Models, MoreDisksLowerMttdl) {
  DiskReliabilityParams params;
  EXPECT_GT(mttdl_raid5(5, params), mttdl_raid5(20, params));
  EXPECT_GT(mttdl_oi_raid(21, params), mttdl_oi_raid(52, params));
}

TEST(Models, LossProbabilityMonotoneInMission) {
  DiskReliabilityParams params;
  params.mttf_hours = 50000;
  const double p1 = loss_probability_t_tolerant(8, 1, params, 1000.0);
  const double p2 = loss_probability_t_tolerant(8, 1, params, 10000.0);
  EXPECT_GT(p2, p1);
  EXPECT_GT(p1, 0.0);
  EXPECT_LT(p2, 1.0);
}

TEST(MonteCarloTest, MatchesMarkovForRaid5) {
  // Stress the parameters so losses are common enough to estimate tightly.
  layout::Raid5Layout layout(5, 2);
  MonteCarloConfig config;
  config.mttf_hours = 3000;
  config.rebuild_hours = 150;
  config.mission_hours = 6000;
  config.trials = 4000;
  config.seed = 11;
  const auto mc = monte_carlo_reliability(layout, config);

  DiskReliabilityParams params;
  params.mttf_hours = config.mttf_hours;
  params.rebuild_hours = config.rebuild_hours;
  const double markov = loss_probability_t_tolerant(5, 1, params, config.mission_hours);
  EXPECT_NEAR(mc.loss_probability, markov, 3.0 * mc.ci95 + 0.01);
  EXPECT_EQ(mc.trials, 4000u);
  EXPECT_EQ(mc.losses, mc.time_to_loss.count());
}

TEST(MonteCarloTest, StructuralAdvantageOfOiRaid) {
  MonteCarloConfig config;
  config.mttf_hours = 2000;  // brutal, to surface differences quickly
  config.rebuild_hours = 100;
  config.mission_hours = 8000;
  config.trials = 800;
  config.seed = 13;

  layout::ParityDeclusteredLayout pd(bibd::fano(), 1);  // 7 disks, t=1
  layout::OiRaidLayout oi(layout::OiRaidParams{bibd::fano(), 3, 2});

  const auto pd_result = monte_carlo_reliability(pd, config);
  const auto oi_result = monte_carlo_reliability(oi, config);
  // 21 disks vs 7, yet OI-RAID still loses data far less often.
  EXPECT_LT(oi_result.loss_probability, pd_result.loss_probability / 2.0);
}

TEST(MonteCarloTest, DeterministicAcrossRuns) {
  layout::Raid5Layout layout(4, 2);
  MonteCarloConfig config;
  config.mttf_hours = 5000;
  config.rebuild_hours = 200;
  config.trials = 500;
  config.seed = 17;
  const auto a = monte_carlo_reliability(layout, config);
  const auto b = monte_carlo_reliability(layout, config);
  EXPECT_EQ(a.losses, b.losses);
}

TEST(MonteCarloTest, WeibullShapeShiftsLossRate) {
  layout::Raid5Layout layout(5, 2);
  MonteCarloConfig exp_config;
  exp_config.mttf_hours = 4000;
  exp_config.rebuild_hours = 200;
  exp_config.mission_hours = 4000;
  exp_config.trials = 2000;
  exp_config.seed = 19;
  MonteCarloConfig weib_config = exp_config;
  weib_config.weibull_shape = 2.0;  // strongly wear-out: fewer early deaths
  const auto exp_result = monte_carlo_reliability(layout, exp_config);
  const auto weib_result = monte_carlo_reliability(layout, weib_config);
  // With the same mean, shape 2 concentrates failures late, and the short
  // mission (= MTTF) sees fewer overlapping-failure windows early on.
  EXPECT_NE(exp_result.losses, weib_result.losses);
}

TEST(LseModel, ProbabilityBasics) {
  EXPECT_DOUBLE_EQ(lse_probability(0.0), 0.0);
  // 8 TB at 1e-15/bit-ish: small but meaningfully nonzero.
  const double p = lse_probability(8e12);
  EXPECT_GT(p, 0.0);
  EXPECT_LT(p, 0.01);
  // Monotone in volume.
  EXPECT_GT(lse_probability(8e13), p);
  // Saturates at 1 for absurd volumes.
  EXPECT_NEAR(lse_probability(1e20, 1e-15), 1.0, 1e-9);
  EXPECT_THROW(lse_probability(-1.0), std::invalid_argument);
}

TEST(LseModel, ZeroLseMatchesPlainModel) {
  DiskReliabilityParams params;
  EXPECT_NEAR(mttdl_t_tolerant_lse(21, 3, params, 0.0) / mttdl_t_tolerant(21, 3, params),
              1.0, 1e-9);
}

TEST(LseModel, LsePenalizesAndReadVolumeMatters) {
  DiskReliabilityParams params;
  const double clean = mttdl_t_tolerant_lse(21, 1, params, 0.0);
  // RAID5 rebuild reads ~20 disk capacities; OI-RAID ~2.7.
  const double raid5ish = mttdl_t_tolerant_lse(21, 1, params, lse_probability(20 * 8e12));
  const double oiish = mttdl_t_tolerant_lse(21, 1, params, lse_probability(2.7 * 8e12));
  EXPECT_LT(raid5ish, clean);
  EXPECT_LT(raid5ish, oiish);
  EXPECT_LT(oiish, clean);
}

TEST(LseModel, HighLseDominatesMttdl) {
  DiskReliabilityParams params;
  // With p -> 1 every first rebuild fails: MTTDL ~ time to first failure.
  const double mttdl = mttdl_t_tolerant_lse(10, 1, params, 1.0);
  EXPECT_NEAR(mttdl, params.mttf_hours / 10.0, params.mttf_hours * 0.01);
}

TEST(MonteCarloLse, IncreasesLossRate) {
  layout::Raid5Layout layout(5, 2);
  MonteCarloConfig base;
  base.mttf_hours = 20000;
  base.rebuild_hours = 100;
  base.mission_hours = 20000;
  base.trials = 2000;
  base.seed = 23;
  MonteCarloConfig lse = base;
  lse.lse_probability_per_repair = 0.2;
  const auto clean = monte_carlo_reliability(layout, base);
  const auto dirty = monte_carlo_reliability(layout, lse);
  EXPECT_GT(dirty.losses, clean.losses + 10);
}

TEST(MonteCarloLse, OiRaidShrugsOffSingleLse) {
  // At one concurrent failure + one bad sector, OI-RAID still has two spare
  // tolerances; losses should stay near the no-LSE level.
  layout::OiRaidLayout oi({bibd::fano(), 3, 2});
  MonteCarloConfig config;
  config.mttf_hours = 20000;
  config.rebuild_hours = 100;
  config.mission_hours = 20000;
  config.trials = 1500;
  config.seed = 29;
  config.lse_probability_per_repair = 0.3;
  const auto result = monte_carlo_reliability(oi, config);
  EXPECT_LT(result.loss_probability, 0.02);
}

TEST(MonteCarloDomains, WholeRackLossKillsRaid50ButNotOiRaid) {
  // One OI-RAID group per rack: rack failure = whole-group loss, which
  // OI-RAID's outer layer recovers; RAID5+0 with a group per rack dies.
  MonteCarloConfig config;
  config.mttf_hours = 1e9;  // individual failures off: isolate the rack effect
  config.rebuild_hours = 50;
  config.mission_hours = 50000;
  config.trials = 400;
  config.seed = 31;
  config.disks_per_domain = 3;
  config.domain_mttf_hours = 100000;

  layout::OiRaidLayout oi({bibd::fano(), 3, 2});
  layout::Raid50Layout raid50(7, 3, 6);
  const auto oi_result = monte_carlo_reliability(oi, config);
  const auto raid50_result = monte_carlo_reliability(raid50, config);
  // OI-RAID survives single-rack losses outright; only the rare overlap of
  // two concurrent rack rebuilds can hurt it.
  EXPECT_LT(oi_result.losses, 10u);
  EXPECT_GT(raid50_result.losses, 100u);
}

TEST(MonteCarloDomains, ValidatesDomainConfig) {
  layout::Raid5Layout layout(5, 2);
  MonteCarloConfig config;
  config.disks_per_domain = 2;  // does not divide 5
  config.domain_mttf_hours = 1000;
  EXPECT_THROW(monte_carlo_reliability(layout, config), std::invalid_argument);
  MonteCarloConfig config2;
  config2.disks_per_domain = 5;
  config2.domain_mttf_hours = 0.0;
  EXPECT_THROW(monte_carlo_reliability(layout, config2), std::invalid_argument);
}

TEST(MonteCarloTest, Validation) {
  layout::Raid5Layout layout(4, 2);
  MonteCarloConfig config;
  config.trials = 0;
  EXPECT_THROW(monte_carlo_reliability(layout, config), std::invalid_argument);
}

TEST(MonteCarloTest, ZeroLossRunReportsWilsonUpperBound) {
  // Reliable parameters: no losses, yet the interval must stay informative.
  layout::Raid5Layout layout(5, 2);
  MonteCarloConfig config;
  config.mttf_hours = 1e9;
  config.rebuild_hours = 1.0;
  config.mission_hours = 1000.0;
  config.trials = 2000;
  config.seed = 41;
  const auto result = monte_carlo_reliability(layout, config);
  EXPECT_EQ(result.losses, 0u);
  EXPECT_DOUBLE_EQ(result.loss_probability, 0.0);
  EXPECT_DOUBLE_EQ(result.ci95_lo, 0.0);
  EXPECT_GT(result.ci95_hi, 0.0);  // Wilson: "p <= hi at 95%"
  EXPECT_LT(result.ci95_hi, 0.01);
  EXPECT_TRUE(std::isinf(result.relative_error));
}

// RAID5 with exponential lifetimes and per-disk repairs is exactly the CTMC
// behind loss_probability_t_tolerant, so the structural simulation can be
// validated against a closed form -- and the importance-sampled estimator
// against both. One shared config keeps the three comparable.
MonteCarloConfig exactly_solvable_config() {
  MonteCarloConfig config;
  config.mttf_hours = 1e5;
  config.rebuild_hours = 100.0;
  config.mission_hours = 2e4;
  config.seed = 43;
  return config;
}

TEST(BiasedMonteCarlo, PlainBiasedAndCtmcAgreeWithinIntervals) {
  layout::Raid5Layout layout(6, 4);
  MonteCarloConfig plain_config = exactly_solvable_config();
  plain_config.trials = 100'000;

  DiskReliabilityParams params;
  params.mttf_hours = plain_config.mttf_hours;
  params.rebuild_hours = plain_config.rebuild_hours;
  const double exact = loss_probability_t_tolerant(
      layout.disks(), 1, params, plain_config.mission_hours);

  const auto plain = monte_carlo_reliability(layout, plain_config);
  EXPECT_GE(exact, plain.ci95_lo);
  EXPECT_LE(exact, plain.ci95_hi);

  for (const double bias : {5.0, 20.0}) {
    BiasedMonteCarloConfig biased_config;
    static_cast<MonteCarloConfig&>(biased_config) = exactly_solvable_config();
    biased_config.trials = 50'000;
    biased_config.failure_bias = bias;
    const auto biased = monte_carlo_reliability(layout, biased_config);
    // Within its own interval of the exact value...
    EXPECT_GE(exact, biased.ci95_lo) << "bias=" << bias;
    EXPECT_LE(exact, biased.ci95_hi) << "bias=" << bias;
    // ...and consistent with the plain estimate (intervals overlap).
    EXPECT_GE(biased.ci95_hi, plain.ci95_lo) << "bias=" << bias;
    EXPECT_LE(biased.ci95_lo, plain.ci95_hi) << "bias=" << bias;
    // Biasing must actually concentrate simulation effort on losses.
    EXPECT_GT(biased.losses, plain.losses) << "bias=" << bias;
    EXPECT_GT(biased.ess, 100.0) << "bias=" << bias;
    EXPECT_LT(biased.relative_error, 0.05) << "bias=" << bias;
    EXPECT_DOUBLE_EQ(biased.failure_bias, bias);
  }
}

TEST(BiasedMonteCarlo, BiasOneMatchesPlainEstimator) {
  layout::Raid5Layout layout(6, 4);
  MonteCarloConfig plain_config = exactly_solvable_config();
  plain_config.trials = 5000;
  BiasedMonteCarloConfig biased_config;
  static_cast<MonteCarloConfig&>(biased_config) = plain_config;
  biased_config.failure_bias = 1.0;
  const auto plain = monte_carlo_reliability(layout, plain_config);
  const auto biased = monte_carlo_reliability(layout, biased_config);
  EXPECT_EQ(plain.losses, biased.losses);
  EXPECT_DOUBLE_EQ(plain.loss_probability, biased.loss_probability);
}

TEST(BiasedMonteCarlo, DeterministicAcrossThreadCounts) {
  layout::OiRaidLayout oi({bibd::fano(), 3, 2});
  BiasedMonteCarloConfig config;
  config.mttf_hours = 20'000;
  config.rebuild_hours = 200.0;
  config.mission_hours = 20'000;
  config.trials = 4000;
  config.seed = 47;
  config.failure_bias = 10.0;
  config.threads = 1;
  const auto one = monte_carlo_reliability(oi, config);
  config.threads = 4;
  const auto four = monte_carlo_reliability(oi, config);
  EXPECT_EQ(one.losses, four.losses);
  EXPECT_DOUBLE_EQ(one.loss_probability, four.loss_probability);
  EXPECT_DOUBLE_EQ(one.ess, four.ess);
}

TEST(BiasedMonteCarlo, Validation) {
  layout::Raid5Layout layout(4, 2);
  BiasedMonteCarloConfig config;
  config.trials = 100;
  config.failure_bias = 0.5;  // de-biasing is not supported
  EXPECT_THROW(monte_carlo_reliability(layout, config), std::invalid_argument);
  config.failure_bias = 4.0;
  config.weibull_shape = 1.2;  // window re-scaling needs memorylessness
  EXPECT_THROW(monte_carlo_reliability(layout, config), std::invalid_argument);
}

TEST(BiasedMonteCarlo, SharedOracleIsReusedAcrossRuns) {
  layout::OiRaidLayout oi({bibd::fano(), 3, 2});
  RecoverabilityOracle oracle(oi);
  BiasedMonteCarloConfig config;
  config.mttf_hours = 20'000;
  config.rebuild_hours = 200.0;
  config.mission_hours = 20'000;
  config.trials = 3000;
  config.seed = 53;
  config.failure_bias = 8.0;
  config.oracle = &oracle;
  const auto first = monte_carlo_reliability(oi, config);
  const auto second = monte_carlo_reliability(oi, config);
  // The second (identical) run finds every pattern already cached.
  EXPECT_GT(first.oracle_misses, 0u);
  EXPECT_EQ(second.oracle_misses, 0u);
  EXPECT_EQ(second.oracle_hits, first.oracle_hits + first.oracle_misses);
  EXPECT_DOUBLE_EQ(first.loss_probability, second.loss_probability);
}

}  // namespace
}  // namespace oi::reliability
