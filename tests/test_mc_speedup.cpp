// Long-running performance gate (ctest label: long): the parallel
// Monte-Carlo trial loop must actually scale. Skipped on small machines --
// a meaningful speedup measurement needs at least 4 hardware threads.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "bench_common.hpp"
#include "reliability/monte_carlo.hpp"

namespace oi::reliability {
namespace {

double run_seconds(const layout::Layout& layout, MonteCarloConfig config,
                   std::size_t threads) {
  config.threads = threads;
  const auto start = std::chrono::steady_clock::now();
  const auto result = monte_carlo_reliability(layout, config);
  const auto end = std::chrono::steady_clock::now();
  EXPECT_EQ(result.trials, config.trials);
  return std::chrono::duration<double>(end - start).count();
}

TEST(MonteCarloSpeedup, ParallelTrialsAtLeastThreeTimesFaster) {
  const unsigned cores = std::thread::hardware_concurrency();
  if (cores < 4) {
    GTEST_SKIP() << "speedup measurement needs >= 4 hardware threads, have "
                 << cores;
  }

  const auto layout = bench::make_oi(bench::geometry_sweep(false)[0], 2);
  MonteCarloConfig config;
  config.mttf_hours = 10'000;
  config.rebuild_hours = 200;
  config.mission_hours = 20'000;
  config.trials = 100'000;
  config.seed = 31;

  // Warm the shared StripeMap cache so neither run pays the one-time build.
  layout.stripe_map();

  const double sequential = run_seconds(layout, config, 1);
  const double parallel = run_seconds(layout, config, cores);
  EXPECT_GE(sequential / parallel, 3.0)
      << "sequential " << sequential << "s, parallel " << parallel << "s on "
      << cores << " cores";
}

}  // namespace
}  // namespace oi::reliability
