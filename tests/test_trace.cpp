#include "util/trace.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <vector>

#include "bench_json.hpp"
#include "bibd/constructions.hpp"
#include "json_lint.hpp"
#include "layout/oi_raid.hpp"
#include "sim/rebuild.hpp"
#include "util/metrics.hpp"

namespace oi::trace {
namespace {

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override { Tracer::instance().start(); }
  void TearDown() override {
    Tracer::instance().stop();
    Tracer::instance().clear();
  }
};

TEST_F(TraceTest, DisabledEmissionIsDropped) {
  Tracer& tracer = Tracer::instance();
  tracer.stop();
  tracer.begin(1, 0, "span", 0.0);
  tracer.end(1, 0, "span", 1.0);
  tracer.counter(1, "q", 0.5, 3.0);
  EXPECT_EQ(tracer.event_count(), 0u);
  EXPECT_FALSE(enabled());
  tracer.start();
  EXPECT_TRUE(enabled());
  tracer.begin(1, 0, "span", 0.0);
  EXPECT_EQ(tracer.event_count(), 1u);
}

TEST_F(TraceTest, JsonIsWellFormedWithEveryPhase) {
  Tracer& tracer = Tracer::instance();
  tracer.process_name(1, "run \"one\"");  // quote must be escaped
  tracer.thread_name(1, 3, "disk 3");
  tracer.begin(1, 3, "fg read", 0.001, "disk");
  tracer.counter(1, "queue.d3", 0.001, 2.0);
  tracer.async_begin(1, "rebuild", 7, "step", 0.001);
  tracer.async_end(1, "rebuild", 7, "step", 0.004);
  tracer.end(1, 3, "fg read", 0.002);
  const std::string json = tracer.to_json();
  EXPECT_TRUE(oi::testing::JsonLint::well_formed(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\\\"one\\\""), std::string::npos);
  // Timestamps are converted to microseconds.
  EXPECT_NE(json.find("\"ts\": 1000"), std::string::npos);
}

TEST_F(TraceTest, WallSpanUsesHostPid) {
  {
    WallSpan span("bench phase");
  }
  const std::string json = Tracer::instance().to_json();
  EXPECT_NE(json.find("\"pid\": 0"), std::string::npos);
  EXPECT_NE(json.find("bench phase"), std::string::npos);
}

TEST_F(TraceTest, RunIdsAreDistinct) {
  Tracer& tracer = Tracer::instance();
  const std::uint64_t a = tracer.next_run_id();
  const std::uint64_t b = tracer.next_run_id();
  EXPECT_GE(a, 1u);  // 0 is reserved for the wall-clock host process
  EXPECT_NE(a, b);
}

// Replays the emitted JSON and checks B/E spans nest properly per (pid, tid)
// lane -- the invariant Chrome's viewer needs to draw a flame graph.
void expect_spans_nest(const std::string& json) {
  // The serialized events carry one '"ph": "X"' per record; walk records in
  // file order (the tracer buffers in emission order; sim time is
  // monotonic within a lane).
  std::map<std::pair<std::string, std::string>, std::vector<std::string>> stacks;
  std::size_t at = 0;
  while ((at = json.find("{\"ph\": \"", at)) != std::string::npos) {
    const auto field = [&](const char* key) {
      const std::size_t k = json.find(key, at);
      const std::size_t start = k + std::strlen(key);
      return json.substr(start, json.find_first_of(",}", start) - start);
    };
    const std::string ph = json.substr(at + 8, 1);
    if (ph == "B" || ph == "E") {
      const auto lane = std::make_pair(field("\"pid\": "), field("\"tid\": "));
      const std::string name = field("\"name\": ");
      auto& stack = stacks[lane];
      if (ph == "B") {
        stack.push_back(name);
      } else {
        ASSERT_FALSE(stack.empty()) << "E without open B on lane";
        EXPECT_EQ(stack.back(), name) << "E does not match innermost B";
        stack.pop_back();
      }
    }
    ++at;
  }
  for (const auto& [lane, stack] : stacks) {
    EXPECT_TRUE(stack.empty()) << "unclosed span on pid/tid " << lane.first << "/"
                               << lane.second;
  }
}

TEST_F(TraceTest, SimulatedRebuildTraceNestsAndLabelsEveryDisk) {
  layout::OiRaidLayout layout(layout::OiRaidParams{bibd::fano(), 3, 6});
  sim::SimConfig config;
  config.max_inflight_steps = 32;
  sim::simulate(layout, {0}, config);

  const std::string json = Tracer::instance().to_json();
  EXPECT_TRUE(oi::testing::JsonLint::well_formed(json)) << json.substr(0, 400);
  expect_spans_nest(json);

  // One labeled lane per simulated disk (21 for the Fano geometry).
  std::size_t lanes = 0;
  for (std::size_t at = 0; (at = json.find("thread_name", at)) != std::string::npos;
       ++at) {
    ++lanes;
  }
  EXPECT_EQ(lanes, layout.disks());
  EXPECT_NE(json.find("failed 0"), std::string::npos);
}

// Flight-recorder mode: a bounded ring that keeps only the newest events.
TEST_F(TraceTest, RingModeKeepsTheLastNEventsInChronologicalOrder) {
  Tracer& tracer = Tracer::instance();
  tracer.set_ring_capacity(3);
  tracer.start();
  for (int i = 0; i < 7; ++i) {
    tracer.counter(0, "ring.series", 0.001 * i, static_cast<double>(i));
  }
  EXPECT_EQ(tracer.ring_capacity(), 3u);
  EXPECT_EQ(tracer.event_count(), 3u);
  EXPECT_EQ(tracer.dropped_events(), 4u);

  const std::string json = tracer.to_json();
  EXPECT_TRUE(oi::testing::JsonLint::well_formed(json)) << json;
  EXPECT_EQ(json.find("\"value\": 3}"), std::string::npos) << "aged out";
  const std::size_t at4 = json.find("\"value\": 4}");
  const std::size_t at5 = json.find("\"value\": 5}");
  const std::size_t at6 = json.find("\"value\": 6}");
  ASSERT_NE(at4, std::string::npos);
  ASSERT_NE(at5, std::string::npos);
  ASSERT_NE(at6, std::string::npos);
  EXPECT_LT(at4, at5);
  EXPECT_LT(at5, at6);

  tracer.set_ring_capacity(0);  // restore unbounded mode
}

TEST_F(TraceTest, RingBelowCapacityBehavesLikeUnbounded) {
  Tracer& tracer = Tracer::instance();
  tracer.set_ring_capacity(10);
  tracer.start();
  tracer.counter(0, "ring.partial", 0.001, 1.0);
  tracer.counter(0, "ring.partial", 0.002, 2.0);
  EXPECT_EQ(tracer.event_count(), 2u);
  EXPECT_EQ(tracer.dropped_events(), 0u);
  const std::string json = tracer.to_json();
  EXPECT_LT(json.find("\"value\": 1}"), json.find("\"value\": 2}"));
  tracer.set_ring_capacity(0);
}

// The observability contract: tracing observes, never perturbs. Simulated
// clocks and all derived numbers must be bit-identical with tracing on or
// off. Guards against instrumentation that accidentally feeds back into
// scheduling (e.g. ordering containers by pointer, consuming RNG draws).
TEST(TraceDeterminism, SimulationResultsBitIdenticalTracedVsUntraced) {
  layout::OiRaidLayout layout(layout::OiRaidParams{bibd::fano(), 3, 10});
  sim::SimConfig config;
  config.max_inflight_steps = 32;
  config.foreground = sim::ForegroundConfig{};
  config.seed = 11;

  Tracer::instance().stop();
  metrics::set_enabled(false);
  const sim::SimResult plain = sim::simulate(layout, {0}, config);

  Tracer::instance().start();
  metrics::set_enabled(true);
  const sim::SimResult traced = sim::simulate(layout, {0}, config);
  const std::size_t events = Tracer::instance().event_count();
  Tracer::instance().stop();
  Tracer::instance().clear();
  metrics::set_enabled(false);

  EXPECT_GT(events, 0u) << "tracing was supposed to be on for the second run";

  // Bit-identical doubles: memcmp, not EXPECT_DOUBLE_EQ.
  const auto same_bits = [](double a, double b) {
    return std::memcmp(&a, &b, sizeof(double)) == 0;
  };
  EXPECT_TRUE(same_bits(plain.rebuild_seconds, traced.rebuild_seconds));
  EXPECT_TRUE(same_bits(plain.copy_back_seconds, traced.copy_back_seconds));
  EXPECT_EQ(plain.rebuild_strips, traced.rebuild_strips);
  EXPECT_EQ(plain.rebuild_disk_reads, traced.rebuild_disk_reads);
  EXPECT_EQ(plain.rebuild_disk_writes, traced.rebuild_disk_writes);
  EXPECT_EQ(plain.foreground_completed, traced.foreground_completed);
  ASSERT_EQ(plain.foreground_latencies.size(), traced.foreground_latencies.size());
  for (std::size_t i = 0; i < plain.foreground_latencies.size(); ++i) {
    EXPECT_TRUE(
        same_bits(plain.foreground_latencies[i], traced.foreground_latencies[i]))
        << "latency " << i << " diverged";
  }
  ASSERT_EQ(plain.disk_busy_seconds.size(), traced.disk_busy_seconds.size());
  for (std::size_t d = 0; d < plain.disk_busy_seconds.size(); ++d) {
    EXPECT_TRUE(same_bits(plain.disk_busy_seconds[d], traced.disk_busy_seconds[d]))
        << "disk " << d << " busy time diverged";
  }

  // And the serialized bench records (precision(17) doubles) match byte for
  // byte -- the form the BENCH JSON regression scripts actually consume.
  const auto record_all = [](const sim::SimResult& r) {
    bench::BenchJson json("trace_determinism_check");
    json.record("fano", "rebuild_seconds", r.rebuild_seconds);
    for (std::size_t d = 0; d < r.disk_busy_seconds.size(); ++d) {
      json.record("fano", "busy_" + std::to_string(d), r.disk_busy_seconds[d]);
    }
    return json.to_string();
  };
  EXPECT_EQ(record_all(plain), record_all(traced));
}

}  // namespace
}  // namespace oi::trace
