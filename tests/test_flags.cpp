#include "util/flags.hpp"

#include <gtest/gtest.h>

namespace oi {
namespace {

TEST(FlagsTest, BasicForms) {
  // A flag greedily consumes the next non-flag token as its value, so bare
  // boolean flags must come last or use the `=` form next to positionals.
  Flags flags({"positional1", "positional2", "--v", "7", "--k=3", "--skew"});
  EXPECT_EQ(flags.get_int("v", 0), 7);
  EXPECT_EQ(flags.get_int("k", 0), 3);
  EXPECT_TRUE(flags.get_bool("skew"));
  EXPECT_EQ(flags.positional(), (std::vector<std::string>{"positional1", "positional2"}));
}

TEST(FlagsTest, FlagConsumesFollowingToken) {
  Flags flags({"--skew", "next"});
  EXPECT_THROW(flags.get_bool("skew"), std::invalid_argument);
  EXPECT_EQ(flags.get_string("skew", ""), "next");
}

TEST(FlagsTest, Defaults) {
  Flags flags({});
  EXPECT_EQ(flags.get_int("missing", 42), 42);
  EXPECT_DOUBLE_EQ(flags.get_double("missing", 2.5), 2.5);
  EXPECT_EQ(flags.get_string("missing", "x"), "x");
  EXPECT_FALSE(flags.get_bool("missing"));
  EXPECT_FALSE(flags.has("missing"));
}

TEST(FlagsTest, ArgcArgvConstructorSkipsProgramName) {
  const char* argv[] = {"prog", "--n", "5"};
  Flags flags(3, argv);
  EXPECT_EQ(flags.get_int("n", 0), 5);
}

TEST(FlagsTest, BooleanSpellings) {
  Flags flags({"--a=true", "--b=false", "--c=1", "--d=no"});
  EXPECT_TRUE(flags.get_bool("a"));
  EXPECT_FALSE(flags.get_bool("b"));
  EXPECT_TRUE(flags.get_bool("c"));
  EXPECT_FALSE(flags.get_bool("d"));
  Flags bad({"--e=maybe"});
  EXPECT_THROW(bad.get_bool("e"), std::invalid_argument);
}

TEST(FlagsTest, SizeList) {
  Flags flags({"--fail=0,3,17"});
  EXPECT_EQ(flags.get_size_list("fail"), (std::vector<std::size_t>{0, 3, 17}));
  EXPECT_TRUE(Flags({}).get_size_list("fail").empty());
  Flags bad({"--fail=1,x"});
  EXPECT_THROW(bad.get_size_list("fail"), std::invalid_argument);
}

TEST(FlagsTest, NegativeNumbersAsValues) {
  // "--x -3" would look like a flag; the = form is required for negatives.
  Flags flags({"--x=-3", "--y=-2.5"});
  EXPECT_EQ(flags.get_int("x", 0), -3);
  EXPECT_DOUBLE_EQ(flags.get_double("y", 0.0), -2.5);
}

TEST(FlagsTest, Malformed) {
  EXPECT_THROW(Flags({"--"}), std::invalid_argument);
  EXPECT_THROW(Flags({"--=5"}), std::invalid_argument);
  EXPECT_THROW(Flags({"--a", "1", "--a", "2"}), std::invalid_argument);
  Flags flags({"--n", "abc"});
  EXPECT_THROW(flags.get_int("n", 0), std::invalid_argument);
  Flags flags2({"--x", "1.5zzz"});
  EXPECT_THROW(flags2.get_double("x", 0.0), std::invalid_argument);
}

TEST(FlagsTest, UnusedDetection) {
  Flags flags({"--used", "1", "--typo", "2"});
  EXPECT_EQ(flags.get_int("used", 0), 1);
  EXPECT_EQ(flags.unused(), std::vector<std::string>{"typo"});
}

class FlagRegistryTest : public ::testing::Test {
 protected:
  // The registry is process-wide; isolate every scenario.
  void SetUp() override { FlagRegistry::instance().clear(); }
  void TearDown() override { FlagRegistry::instance().clear(); }
};

TEST_F(FlagRegistryTest, DeclareAndQuery) {
  FlagRegistry& reg = FlagRegistry::instance();
  EXPECT_FALSE(reg.declared("trace-out"));
  reg.declare("trace-out", "write a Chrome trace to FILE");
  EXPECT_TRUE(reg.declared("trace-out"));
  EXPECT_NE(reg.usage().find("--trace-out"), std::string::npos);
}

TEST_F(FlagRegistryTest, DuplicateDeclarationIsHardError) {
  FlagRegistry& reg = FlagRegistry::instance();
  reg.declare("threads", "worker count");
  // Identical help text does not make it legal: a repeated registration
  // always means two call sites claim the same flag.
  EXPECT_THROW(reg.declare("threads", "worker count"), std::invalid_argument);
  EXPECT_THROW(reg.declare("threads", "different help"), std::invalid_argument);
}

TEST_F(FlagRegistryTest, EmptyNameRejected) {
  EXPECT_THROW(FlagRegistry::instance().declare("", "no name"), std::invalid_argument);
}

TEST_F(FlagRegistryTest, UsageSortedByName) {
  FlagRegistry& reg = FlagRegistry::instance();
  reg.declare("zeta", "last");
  reg.declare("alpha", "first");
  const std::string usage = reg.usage();
  EXPECT_LT(usage.find("--alpha"), usage.find("--zeta"));
}

}  // namespace
}  // namespace oi
