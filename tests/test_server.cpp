// End-to-end tests for the oiraidd serving core: a real BlockServer on an
// ephemeral loopback port, a real PersistentArray on tmpfs-backed files, and
// real protocol Clients. Covers the protocol surface (ping/read/write/
// status/errors), concurrent clients, online rebuild under live traffic
// (fail a disk mid-stream, keep writing, wait for the rebuild thread to
// finish, verify every byte), and a full server restart over the same
// directory.
#include "server/block_server.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <map>
#include <sstream>
#include <thread>
#include <vector>

#include "bibd/constructions.hpp"
#include "server/persistent_array.hpp"
#include "server/protocol.hpp"
#include "util/metrics.hpp"
#include "util/rng.hpp"
#include "util/trace.hpp"

namespace oi::server {
namespace {

constexpr std::size_t kStripBytes = 128;

layout::OiRaidLayout small_layout() {
  return layout::OiRaidLayout({bibd::fano(), 3, 4});
}

std::map<std::string, std::string> parse_status(const std::string& text) {
  std::map<std::string, std::string> kv;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    const auto space = line.find(' ');
    if (space != std::string::npos) {
      kv[line.substr(0, space)] = line.substr(space + 1);
    }
  }
  return kv;
}

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    char tmpl[] = "/tmp/oi-server-XXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr);
    dir_ = std::string(tmpl) + "/array";
    array_ = std::make_unique<PersistentArray>(dir_, small_layout(), kStripBytes);
    server_ = std::make_unique<BlockServer>(*array_);
  }

  void TearDown() override {
    server_.reset();
    array_.reset();
  }

  Client connect() { return Client("127.0.0.1", server_->port()); }

  /// Polls kStatus until the failure set is empty (rebuild thread done).
  void wait_for_rebuild(Client& client, int timeout_ms = 10000) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
    while (std::chrono::steady_clock::now() < deadline) {
      if (parse_status(client.status())["failed"].substr(0, 1) == "0") return;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    FAIL() << "rebuild did not finish within " << timeout_ms << " ms:\n"
           << client.status();
  }

  std::string dir_;
  std::unique_ptr<PersistentArray> array_;
  std::unique_ptr<BlockServer> server_;
};

TEST_F(ServerTest, PingStatusAndGeometry) {
  Client client = connect();
  client.ping();
  const auto kv = parse_status(client.status());
  EXPECT_EQ(kv.at("strip_bytes"), std::to_string(kStripBytes));
  EXPECT_EQ(kv.at("capacity_bytes"),
            std::to_string(array_->array().capacity_bytes()));
  EXPECT_EQ(kv.at("failed").substr(0, 1), "0");
  EXPECT_EQ(kv.at("rebuild_active"), "0");
}

TEST_F(ServerTest, WriteReadRoundTripAcrossStripBoundaries) {
  Client client = connect();
  // Deliberately unaligned: starts mid-strip, spans three strips.
  const std::uint64_t offset = kStripBytes - 11;
  std::vector<std::uint8_t> data(2 * kStripBytes + 23);
  Rng rng(5);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.uniform_u64(256));
  client.write(offset, data);
  EXPECT_EQ(client.read(offset, static_cast<std::uint32_t>(data.size())), data);
  // Zero-length read is legal and empty.
  EXPECT_TRUE(client.read(0, 0).empty());
}

TEST_F(ServerTest, ErrorsComeBackAsExceptionsNotDeadConnections) {
  Client client = connect();
  const auto capacity = array_->array().capacity_bytes();
  EXPECT_THROW(client.read(capacity, 1), std::runtime_error);
  EXPECT_THROW(client.write(capacity - 1, std::vector<std::uint8_t>(2)),
               std::runtime_error);
  EXPECT_THROW(client.fail_disk(10000), std::runtime_error);
  // The connection survives an error frame.
  client.ping();
  EXPECT_EQ(client.read(0, 4).size(), 4u);
}

TEST_F(ServerTest, ConcurrentClientsSeeConsistentData) {
  constexpr int kClients = 4;
  constexpr int kRoundsPerClient = 20;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      try {
        Client client("127.0.0.1", server_->port());
        // Each client owns a disjoint strip, so round-trips are exact even
        // though clients interleave arbitrarily.
        const std::uint64_t offset = static_cast<std::uint64_t>(c) * kStripBytes;
        Rng rng(100 + static_cast<std::uint64_t>(c));
        for (int round = 0; round < kRoundsPerClient; ++round) {
          std::vector<std::uint8_t> data(kStripBytes);
          for (auto& b : data) {
            b = static_cast<std::uint8_t>(rng.uniform_u64(256));
          }
          client.write(offset, data);
          if (client.read(offset, kStripBytes) != data) {
            ++failures;
            return;
          }
        }
      } catch (...) {
        ++failures;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST_F(ServerTest, OnlineRebuildUnderLiveTraffic) {
  Client client = connect();
  std::map<std::uint64_t, std::vector<std::uint8_t>> golden;
  Rng rng(17);
  auto random_block = [&] {
    std::vector<std::uint8_t> data(kStripBytes);
    for (auto& b : data) b = static_cast<std::uint8_t>(rng.uniform_u64(256));
    return data;
  };
  const auto capacity = array_->array().capacity_bytes();
  const std::uint64_t strips = capacity / kStripBytes;

  // Seed some data, then fail a disk while continuing to write.
  for (std::uint64_t s = 0; s < strips; s += 2) {
    auto data = random_block();
    client.write(s * kStripBytes, data);
    golden[s] = std::move(data);
  }
  client.fail_disk(2);
  {
    const auto kv = parse_status(client.status());
    EXPECT_EQ(kv.at("failed").substr(0, 1), "1");
  }
  // Live traffic during the rebuild: overwrites and fresh writes.
  for (std::uint64_t s = 1; s < strips; s += 3) {
    auto data = random_block();
    client.write(s * kStripBytes, data);
    golden[s] = std::move(data);
  }
  wait_for_rebuild(client);
  // Every byte ever written reads back; the array is parity-clean.
  for (const auto& [s, data] : golden) {
    ASSERT_EQ(client.read(s * kStripBytes, kStripBytes), data) << "strip " << s;
  }
  EXPECT_EQ(array_->array().scrub(), "");
}

TEST_F(ServerTest, RestartServesPersistedBytes) {
  std::vector<std::uint8_t> data(3 * kStripBytes);
  Rng rng(23);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.uniform_u64(256));
  {
    Client client = connect();
    client.write(kStripBytes, data);
  }
  // Tear the whole stack down (server dtor syncs) and bring it back up on
  // the same directory.
  server_.reset();
  array_.reset();
  array_ = std::make_unique<PersistentArray>(dir_);
  server_ = std::make_unique<BlockServer>(*array_);
  Client client = connect();
  EXPECT_EQ(client.read(kStripBytes, static_cast<std::uint32_t>(data.size())),
            data);
}

TEST_F(ServerTest, StopFrameShutsTheServerDown) {
  Client client = connect();
  client.stop();
  server_->wait();  // returns promptly once stop() ran
}

TEST_F(ServerTest, UntaggedRequestsLandInDefaultTenantSlot) {
  Client client = connect();
  client.write(0, std::vector<std::uint8_t>(kStripBytes, 7));
  client.read(0, kStripBytes);
  const TenantTable& tenants = server_->tenants();
  ASSERT_EQ(tenants.size(), 1u);  // just the implicit default slot
  EXPECT_EQ(tenants.at(0).config().id, 0);
  EXPECT_EQ(tenants.at(0).ops(), 2u);
  EXPECT_EQ(tenants.at(0).read_bytes(), kStripBytes);
  EXPECT_EQ(tenants.at(0).write_bytes(), kStripBytes);
}

/// Same fixture shape but with declared tenants (and optionally the
/// controller) in the server config.
class TenantServerTest : public ServerTest {
 protected:
  void restart_with(BlockServerConfig config) {
    server_.reset();
    server_ = std::make_unique<BlockServer>(*array_, std::move(config));
  }

  static BlockServerConfig two_tenants() {
    BlockServerConfig config;
    config.tenants = {{1, "lat", 2000.0}, {2, "bulk", 0.0}};
    return config;
  }
};

TEST_F(TenantServerTest, TaggedRequestsAreAccountedPerTenant) {
  restart_with(two_tenants());
  Client lat = connect();
  lat.set_tenant(1);
  Client bulk = connect();
  bulk.set_tenant(2);
  lat.read(0, kStripBytes);
  lat.read(kStripBytes, kStripBytes);
  bulk.write(0, std::vector<std::uint8_t>(2 * kStripBytes, 9));
  const TenantTable& tenants = server_->tenants();
  ASSERT_EQ(tenants.size(), 3u);  // default + 2 declared
  // Lookups are by wire id, independent of slot order.
  auto& table = const_cast<TenantTable&>(tenants);
  EXPECT_EQ(table.sensors(1).ops(), 2u);
  EXPECT_EQ(table.sensors(1).read_bytes(), 2u * kStripBytes);
  EXPECT_EQ(table.sensors(1).write_bytes(), 0u);
  EXPECT_EQ(table.sensors(2).ops(), 1u);
  EXPECT_EQ(table.sensors(2).write_bytes(), 2u * kStripBytes);
  EXPECT_EQ(table.sensors(0).ops(), 0u);
  // A tenant id nobody declared falls into the default slot.
  Client stray = connect();
  stray.set_tenant(999);
  stray.read(0, 1);
  EXPECT_EQ(table.sensors(0).ops(), 1u);
}

TEST_F(TenantServerTest, StatusReportsTenantAndQosLines) {
  BlockServerConfig config = two_tenants();
  config.qos_controller = true;
  config.controller.interval_ms = 10;
  restart_with(config);
  Client client = connect();
  client.set_tenant(1);
  client.read(0, kStripBytes);
  const std::string status = client.status();
  const auto kv = parse_status(status);
  EXPECT_EQ(kv.at("qos_controller"), "1");
  EXPECT_EQ(kv.at("tenants"), "3");
  EXPECT_NE(status.find("tenant 1 lat ops 1"), std::string::npos) << status;
  EXPECT_NE(status.find("slo_p99_us 2000"), std::string::npos) << status;
  EXPECT_NE(status.find("tenant 2 bulk ops 0"), std::string::npos) << status;
  EXPECT_TRUE(kv.contains("qos_rebuild_rate_bytes_per_second"));
  EXPECT_TRUE(kv.contains("qos_decisions"));
  EXPECT_TRUE(kv.contains("qos_slo_violations"));
}

TEST_F(TenantServerTest, StaticModeReportsBucketRateAndNoControllerLines) {
  BlockServerConfig config = two_tenants();
  config.rebuild_bytes_per_second = 123456.0;
  restart_with(config);
  Client client = connect();
  const auto kv = parse_status(client.status());
  EXPECT_EQ(kv.at("qos_controller"), "0");
  EXPECT_EQ(std::stod(kv.at("qos_rebuild_rate_bytes_per_second")), 123456.0);
  EXPECT_FALSE(kv.contains("qos_decisions"));
  EXPECT_EQ(server_->controller(), nullptr);
}

TEST_F(TenantServerTest, ControllerEnabledServerCompletesRebuildUnderTraffic) {
  BlockServerConfig config = two_tenants();
  config.qos_controller = true;
  config.controller.interval_ms = 5;
  // A tight floor so even a throttled-to-minimum rebuild finishes in test
  // time on this tiny array.
  config.controller.min_bytes_per_second = 64.0 * 1024;
  config.controller.initial_bytes_per_second = 1024.0 * 1024;
  config.controller.max_bytes_per_second = 16.0 * 1024 * 1024;
  restart_with(config);
  Client client = connect();
  client.set_tenant(1);
  const auto capacity = array_->array().capacity_bytes();
  for (std::uint64_t off = 0; off + kStripBytes <= capacity;
       off += 2 * kStripBytes) {
    client.write(off, std::vector<std::uint8_t>(kStripBytes,
                                                static_cast<std::uint8_t>(off)));
  }
  client.fail_disk(2);
  // Keep tenant traffic flowing while the controller paces the rebuild.
  for (int i = 0; i < 50; ++i) client.read(0, kStripBytes);
  wait_for_rebuild(client);
  EXPECT_EQ(array_->array().scrub(), "");
  ASSERT_NE(server_->controller(), nullptr);
  EXPECT_GT(server_->controller()->decisions(), 0u);
  EXPECT_GT(server_->rebuild_rate(), 0.0);
}

TEST_F(TenantServerTest, ResponsesEchoTheRequestTenant) {
  restart_with(two_tenants());
  Client client = connect();
  client.set_tenant(2);
  Frame request{Op::kPing};
  const Frame response = client.roundtrip(request);
  EXPECT_EQ(response.tenant, 2);
}

// ------------------------------------- request tracing & profiling ----

/// Splits one "slow-request k=v k=v ..." line into its key=value fields.
std::map<std::string, std::string> parse_slow_line(const std::string& line) {
  std::map<std::string, std::string> kv;
  std::istringstream is(line);
  std::string token;
  while (is >> token) {
    const auto eq = token.find('=');
    if (eq != std::string::npos) {
      kv[token.substr(0, eq)] = token.substr(eq + 1);
    }
  }
  return kv;
}

class TracingServerTest : public TenantServerTest {};

TEST_F(TracingServerTest, ResponsesEchoTheRequestTraceId) {
  Client traced = connect();
  traced.set_tracing(true);
  const Frame response = traced.roundtrip(Frame{Op::kPing});
  EXPECT_NE(traced.last_trace_id(), 0u);
  EXPECT_EQ(response.trace_id, traced.last_trace_id());
  // Untraced clients never see a flagged response (old-client wire compat).
  Client plain = connect();
  const Frame untagged = plain.roundtrip(Frame{Op::kPing});
  EXPECT_EQ(untagged.trace_id, 0u);
}

TEST_F(TracingServerTest, SlowCaptureStageBreakdownSumsToEndToEnd) {
  // A threshold below any real request time turns every request into a
  // capture, which is exactly what the acceptance check wants: the
  // per-stage breakdown must account for the entire end-to-end time.
  BlockServerConfig config;
  config.slow_request_us = 0.001;
  restart_with(config);
  Client client = connect();
  client.write(0, std::vector<std::uint8_t>(kStripBytes, 3));
  client.read(0, kStripBytes);
  client.ping();
  // The counter is bumped after the reply hits the wire, so the client
  // can get here a beat before the server finishes its bookkeeping.
  for (int i = 0; i < 200 && server_->slow_requests() < 3u; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GE(server_->slow_requests(), 3u);

  const std::string profile = client.profile();
  ASSERT_NE(profile.find("slow-request id="), std::string::npos) << profile;
  std::istringstream is(profile);
  std::string line;
  std::size_t checked = 0;
  while (std::getline(is, line)) {
    if (line.rfind("slow-request ", 0) != 0) continue;
    const auto kv = parse_slow_line(line);
    const double total = std::stod(kv.at("total_us"));
    const double stages =
        std::stod(kv.at("decode_us")) + std::stod(kv.at("queue_us")) +
        std::stod(kv.at("lock_us")) + std::stod(kv.at("io_us")) +
        std::stod(kv.at("codec_us")) + std::stod(kv.at("reply_us"));
    // Stages partition [t_start, t_done] by construction; only integer
    // rounding of the six printed fields can perturb the sum.
    EXPECT_NEAR(stages, total, std::max(0.05 * total, 4.0)) << line;
    EXPECT_NE(kv.at("id"), "0") << line;
    ++checked;
  }
  EXPECT_GE(checked, 3u);

  // The slow counter also reaches status (scripts watch it there).
  const auto kv = parse_status(client.status());
  EXPECT_GE(std::stoull(kv.at("slow_requests")), 3u);
}

TEST_F(TracingServerTest, ProfileReportsHotDomainsWhenMetricsAreOn) {
  metrics::set_enabled(true);
  Client client = connect();
  client.write(0, std::vector<std::uint8_t>(2 * kStripBytes, 9));
  client.read(0, kStripBytes);
  const std::string profile = client.profile();
  metrics::set_enabled(false);
  EXPECT_NE(profile.find("hot_domains "), std::string::npos) << profile;
  EXPECT_NE(profile.find("domain "), std::string::npos) << profile;
  EXPECT_NE(profile.find("acquisitions "), std::string::npos) << profile;
  // status carries the short version of the same table.
  const std::string status = client.status();
  EXPECT_NE(status.find("hot_domain "), std::string::npos) << status;
}

TEST_F(TracingServerTest, TracedRequestsEmitNestedStageSpans) {
  auto& tracer = trace::Tracer::instance();
  tracer.clear();
  tracer.start();
  Client client = connect();
  client.set_tracing(true);
  client.write(0, std::vector<std::uint8_t>(kStripBytes, 1));
  const std::uint64_t write_id = client.last_trace_id();
  // Requests on one connection are serialized, so this ping's response
  // guarantees the write's finish_request (span emission) already ran.
  client.ping();
  tracer.stop();
  const std::string json = tracer.to_json();
  tracer.clear();
  for (const char* name :
       {"\"request\"", "\"decode\"", "\"queue\"", "\"lock\"", "\"io\"",
        "\"codec\"", "\"reply\""}) {
    EXPECT_NE(json.find(name), std::string::npos) << name << "\n" << json;
  }
  // The span args carry the client's id, correlating wire to trace.
  EXPECT_NE(json.find("\"req\": " + std::to_string(write_id)),
            std::string::npos)
      << json;
}

TEST_F(TracingServerTest, SlowThresholdNarrowsSpanEmissionToCapturedTails) {
  // An unreachable threshold plus active tracing: no request is slow, so no
  // spans may be emitted (a bounded flight-recorder ring then keeps only
  // interesting requests).
  BlockServerConfig config;
  config.slow_request_us = 1e9;
  restart_with(config);
  auto& tracer = trace::Tracer::instance();
  tracer.clear();
  tracer.start();
  Client client = connect();
  client.set_tracing(true);
  client.write(0, std::vector<std::uint8_t>(kStripBytes, 4));
  client.ping();
  tracer.stop();
  const std::string json = tracer.to_json();
  tracer.clear();
  EXPECT_EQ(json.find("\"request\""), std::string::npos) << json;
  EXPECT_EQ(server_->slow_requests(), 0u);
}

}  // namespace
}  // namespace oi::server
