// End-to-end tests for the oiraidd serving core: a real BlockServer on an
// ephemeral loopback port, a real PersistentArray on tmpfs-backed files, and
// real protocol Clients. Covers the protocol surface (ping/read/write/
// status/errors), concurrent clients, online rebuild under live traffic
// (fail a disk mid-stream, keep writing, wait for the rebuild thread to
// finish, verify every byte), and a full server restart over the same
// directory.
#include "server/block_server.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <map>
#include <sstream>
#include <thread>
#include <vector>

#include "bibd/constructions.hpp"
#include "server/persistent_array.hpp"
#include "server/protocol.hpp"
#include "util/rng.hpp"

namespace oi::server {
namespace {

constexpr std::size_t kStripBytes = 128;

layout::OiRaidLayout small_layout() {
  return layout::OiRaidLayout({bibd::fano(), 3, 4});
}

std::map<std::string, std::string> parse_status(const std::string& text) {
  std::map<std::string, std::string> kv;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    const auto space = line.find(' ');
    if (space != std::string::npos) {
      kv[line.substr(0, space)] = line.substr(space + 1);
    }
  }
  return kv;
}

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    char tmpl[] = "/tmp/oi-server-XXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr);
    dir_ = std::string(tmpl) + "/array";
    array_ = std::make_unique<PersistentArray>(dir_, small_layout(), kStripBytes);
    server_ = std::make_unique<BlockServer>(*array_);
  }

  void TearDown() override {
    server_.reset();
    array_.reset();
  }

  Client connect() { return Client("127.0.0.1", server_->port()); }

  /// Polls kStatus until the failure set is empty (rebuild thread done).
  void wait_for_rebuild(Client& client, int timeout_ms = 10000) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
    while (std::chrono::steady_clock::now() < deadline) {
      if (parse_status(client.status())["failed"].substr(0, 1) == "0") return;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    FAIL() << "rebuild did not finish within " << timeout_ms << " ms:\n"
           << client.status();
  }

  std::string dir_;
  std::unique_ptr<PersistentArray> array_;
  std::unique_ptr<BlockServer> server_;
};

TEST_F(ServerTest, PingStatusAndGeometry) {
  Client client = connect();
  client.ping();
  const auto kv = parse_status(client.status());
  EXPECT_EQ(kv.at("strip_bytes"), std::to_string(kStripBytes));
  EXPECT_EQ(kv.at("capacity_bytes"),
            std::to_string(array_->array().capacity_bytes()));
  EXPECT_EQ(kv.at("failed").substr(0, 1), "0");
  EXPECT_EQ(kv.at("rebuild_active"), "0");
}

TEST_F(ServerTest, WriteReadRoundTripAcrossStripBoundaries) {
  Client client = connect();
  // Deliberately unaligned: starts mid-strip, spans three strips.
  const std::uint64_t offset = kStripBytes - 11;
  std::vector<std::uint8_t> data(2 * kStripBytes + 23);
  Rng rng(5);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.uniform_u64(256));
  client.write(offset, data);
  EXPECT_EQ(client.read(offset, static_cast<std::uint32_t>(data.size())), data);
  // Zero-length read is legal and empty.
  EXPECT_TRUE(client.read(0, 0).empty());
}

TEST_F(ServerTest, ErrorsComeBackAsExceptionsNotDeadConnections) {
  Client client = connect();
  const auto capacity = array_->array().capacity_bytes();
  EXPECT_THROW(client.read(capacity, 1), std::runtime_error);
  EXPECT_THROW(client.write(capacity - 1, std::vector<std::uint8_t>(2)),
               std::runtime_error);
  EXPECT_THROW(client.fail_disk(10000), std::runtime_error);
  // The connection survives an error frame.
  client.ping();
  EXPECT_EQ(client.read(0, 4).size(), 4u);
}

TEST_F(ServerTest, ConcurrentClientsSeeConsistentData) {
  constexpr int kClients = 4;
  constexpr int kRoundsPerClient = 20;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      try {
        Client client("127.0.0.1", server_->port());
        // Each client owns a disjoint strip, so round-trips are exact even
        // though clients interleave arbitrarily.
        const std::uint64_t offset = static_cast<std::uint64_t>(c) * kStripBytes;
        Rng rng(100 + static_cast<std::uint64_t>(c));
        for (int round = 0; round < kRoundsPerClient; ++round) {
          std::vector<std::uint8_t> data(kStripBytes);
          for (auto& b : data) {
            b = static_cast<std::uint8_t>(rng.uniform_u64(256));
          }
          client.write(offset, data);
          if (client.read(offset, kStripBytes) != data) {
            ++failures;
            return;
          }
        }
      } catch (...) {
        ++failures;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST_F(ServerTest, OnlineRebuildUnderLiveTraffic) {
  Client client = connect();
  std::map<std::uint64_t, std::vector<std::uint8_t>> golden;
  Rng rng(17);
  auto random_block = [&] {
    std::vector<std::uint8_t> data(kStripBytes);
    for (auto& b : data) b = static_cast<std::uint8_t>(rng.uniform_u64(256));
    return data;
  };
  const auto capacity = array_->array().capacity_bytes();
  const std::uint64_t strips = capacity / kStripBytes;

  // Seed some data, then fail a disk while continuing to write.
  for (std::uint64_t s = 0; s < strips; s += 2) {
    auto data = random_block();
    client.write(s * kStripBytes, data);
    golden[s] = std::move(data);
  }
  client.fail_disk(2);
  {
    const auto kv = parse_status(client.status());
    EXPECT_EQ(kv.at("failed").substr(0, 1), "1");
  }
  // Live traffic during the rebuild: overwrites and fresh writes.
  for (std::uint64_t s = 1; s < strips; s += 3) {
    auto data = random_block();
    client.write(s * kStripBytes, data);
    golden[s] = std::move(data);
  }
  wait_for_rebuild(client);
  // Every byte ever written reads back; the array is parity-clean.
  for (const auto& [s, data] : golden) {
    ASSERT_EQ(client.read(s * kStripBytes, kStripBytes), data) << "strip " << s;
  }
  EXPECT_EQ(array_->array().scrub(), "");
}

TEST_F(ServerTest, RestartServesPersistedBytes) {
  std::vector<std::uint8_t> data(3 * kStripBytes);
  Rng rng(23);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.uniform_u64(256));
  {
    Client client = connect();
    client.write(kStripBytes, data);
  }
  // Tear the whole stack down (server dtor syncs) and bring it back up on
  // the same directory.
  server_.reset();
  array_.reset();
  array_ = std::make_unique<PersistentArray>(dir_);
  server_ = std::make_unique<BlockServer>(*array_);
  Client client = connect();
  EXPECT_EQ(client.read(kStripBytes, static_cast<std::uint32_t>(data.size())),
            data);
}

TEST_F(ServerTest, StopFrameShutsTheServerDown) {
  Client client = connect();
  client.stop();
  server_->wait();  // returns promptly once stop() ran
}

TEST_F(ServerTest, UntaggedRequestsLandInDefaultTenantSlot) {
  Client client = connect();
  client.write(0, std::vector<std::uint8_t>(kStripBytes, 7));
  client.read(0, kStripBytes);
  const TenantTable& tenants = server_->tenants();
  ASSERT_EQ(tenants.size(), 1u);  // just the implicit default slot
  EXPECT_EQ(tenants.at(0).config().id, 0);
  EXPECT_EQ(tenants.at(0).ops(), 2u);
  EXPECT_EQ(tenants.at(0).read_bytes(), kStripBytes);
  EXPECT_EQ(tenants.at(0).write_bytes(), kStripBytes);
}

/// Same fixture shape but with declared tenants (and optionally the
/// controller) in the server config.
class TenantServerTest : public ServerTest {
 protected:
  void restart_with(BlockServerConfig config) {
    server_.reset();
    server_ = std::make_unique<BlockServer>(*array_, std::move(config));
  }

  static BlockServerConfig two_tenants() {
    BlockServerConfig config;
    config.tenants = {{1, "lat", 2000.0}, {2, "bulk", 0.0}};
    return config;
  }
};

TEST_F(TenantServerTest, TaggedRequestsAreAccountedPerTenant) {
  restart_with(two_tenants());
  Client lat = connect();
  lat.set_tenant(1);
  Client bulk = connect();
  bulk.set_tenant(2);
  lat.read(0, kStripBytes);
  lat.read(kStripBytes, kStripBytes);
  bulk.write(0, std::vector<std::uint8_t>(2 * kStripBytes, 9));
  const TenantTable& tenants = server_->tenants();
  ASSERT_EQ(tenants.size(), 3u);  // default + 2 declared
  // Lookups are by wire id, independent of slot order.
  auto& table = const_cast<TenantTable&>(tenants);
  EXPECT_EQ(table.sensors(1).ops(), 2u);
  EXPECT_EQ(table.sensors(1).read_bytes(), 2u * kStripBytes);
  EXPECT_EQ(table.sensors(1).write_bytes(), 0u);
  EXPECT_EQ(table.sensors(2).ops(), 1u);
  EXPECT_EQ(table.sensors(2).write_bytes(), 2u * kStripBytes);
  EXPECT_EQ(table.sensors(0).ops(), 0u);
  // A tenant id nobody declared falls into the default slot.
  Client stray = connect();
  stray.set_tenant(999);
  stray.read(0, 1);
  EXPECT_EQ(table.sensors(0).ops(), 1u);
}

TEST_F(TenantServerTest, StatusReportsTenantAndQosLines) {
  BlockServerConfig config = two_tenants();
  config.qos_controller = true;
  config.controller.interval_ms = 10;
  restart_with(config);
  Client client = connect();
  client.set_tenant(1);
  client.read(0, kStripBytes);
  const std::string status = client.status();
  const auto kv = parse_status(status);
  EXPECT_EQ(kv.at("qos_controller"), "1");
  EXPECT_EQ(kv.at("tenants"), "3");
  EXPECT_NE(status.find("tenant 1 lat ops 1"), std::string::npos) << status;
  EXPECT_NE(status.find("slo_p99_us 2000"), std::string::npos) << status;
  EXPECT_NE(status.find("tenant 2 bulk ops 0"), std::string::npos) << status;
  EXPECT_TRUE(kv.contains("qos_rebuild_rate_bytes_per_second"));
  EXPECT_TRUE(kv.contains("qos_decisions"));
  EXPECT_TRUE(kv.contains("qos_slo_violations"));
}

TEST_F(TenantServerTest, StaticModeReportsBucketRateAndNoControllerLines) {
  BlockServerConfig config = two_tenants();
  config.rebuild_bytes_per_second = 123456.0;
  restart_with(config);
  Client client = connect();
  const auto kv = parse_status(client.status());
  EXPECT_EQ(kv.at("qos_controller"), "0");
  EXPECT_EQ(std::stod(kv.at("qos_rebuild_rate_bytes_per_second")), 123456.0);
  EXPECT_FALSE(kv.contains("qos_decisions"));
  EXPECT_EQ(server_->controller(), nullptr);
}

TEST_F(TenantServerTest, ControllerEnabledServerCompletesRebuildUnderTraffic) {
  BlockServerConfig config = two_tenants();
  config.qos_controller = true;
  config.controller.interval_ms = 5;
  // A tight floor so even a throttled-to-minimum rebuild finishes in test
  // time on this tiny array.
  config.controller.min_bytes_per_second = 64.0 * 1024;
  config.controller.initial_bytes_per_second = 1024.0 * 1024;
  config.controller.max_bytes_per_second = 16.0 * 1024 * 1024;
  restart_with(config);
  Client client = connect();
  client.set_tenant(1);
  const auto capacity = array_->array().capacity_bytes();
  for (std::uint64_t off = 0; off + kStripBytes <= capacity;
       off += 2 * kStripBytes) {
    client.write(off, std::vector<std::uint8_t>(kStripBytes,
                                                static_cast<std::uint8_t>(off)));
  }
  client.fail_disk(2);
  // Keep tenant traffic flowing while the controller paces the rebuild.
  for (int i = 0; i < 50; ++i) client.read(0, kStripBytes);
  wait_for_rebuild(client);
  EXPECT_EQ(array_->array().scrub(), "");
  ASSERT_NE(server_->controller(), nullptr);
  EXPECT_GT(server_->controller()->decisions(), 0u);
  EXPECT_GT(server_->rebuild_rate(), 0.0);
}

TEST_F(TenantServerTest, ResponsesEchoTheRequestTenant) {
  restart_with(two_tenants());
  Client client = connect();
  client.set_tenant(2);
  Frame request{Op::kPing};
  const Frame response = client.roundtrip(request);
  EXPECT_EQ(response.tenant, 2);
}

}  // namespace
}  // namespace oi::server
