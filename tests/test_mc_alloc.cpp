// Proves the Monte-Carlo trial loop is allocation-free in steady state: a
// counting global operator new/delete wraps a full run, and after a warmup
// run (thread-local scratch grown, oracle populated, ziggurat tables built)
// a second identical run may allocate only a small constant amount -- the
// outcomes array and per-run bookkeeping -- never O(trials).
//
// This lives in its own test binary because replacing the global allocator
// affects every test in the process.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "bibd/constructions.hpp"
#include "layout/oi_raid.hpp"
#include "reliability/monte_carlo.hpp"
#include "reliability/oracle.hpp"

namespace {

std::atomic<std::uint64_t> g_allocations{0};

}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace oi::reliability {
namespace {

std::uint64_t allocations_during(const layout::Layout& layout,
                                 const MonteCarloConfig& config) {
  const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  const auto result = monte_carlo_reliability(layout, config);
  (void)result;
  return g_allocations.load(std::memory_order_relaxed) - before;
}

std::uint64_t biased_allocations_during(const layout::Layout& layout,
                                        const BiasedMonteCarloConfig& config) {
  const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  const auto result = monte_carlo_reliability(layout, config);
  (void)result;
  return g_allocations.load(std::memory_order_relaxed) - before;
}

TEST(MonteCarloAllocation, SteadyStateTrialLoopDoesNotAllocate) {
  layout::OiRaidLayout oi({bibd::fano(), 3, 2, true});
  RecoverabilityOracle oracle(oi);

  // Stressed parameters: plenty of failures, repairs, oracle queries and
  // loss events per trial, on the non-binomial chain path.
  MonteCarloConfig config;
  config.mttf_hours = 10'000;
  config.rebuild_hours = 200.0;
  config.mission_hours = 20'000;
  config.trials = 20'000;
  config.seed = 31;
  config.threads = 1;
  config.oracle = &oracle;

  // Warmup: grows the thread-local scratch, fills the oracle, compiles the
  // stripe map.
  (void)allocations_during(oi, config);

  const std::uint64_t steady = allocations_during(oi, config);
  // Per-run bookkeeping (outcomes array, oracle stats snapshots, trace span)
  // is allowed; per-trial allocation is not. 20k trials with even one
  // allocation per trial would show up as >= 20000.
  EXPECT_LT(steady, 100u) << "trial loop allocates per trial";
}

TEST(MonteCarloAllocation, BinomialFastPathDoesNotAllocate) {
  layout::OiRaidLayout oi({bibd::fano(), 3, 2, true});
  RecoverabilityOracle oracle(oi);

  // Rare-event parameters: the binomial shortcut + bucket prefilter path.
  MonteCarloConfig config;
  config.mttf_hours = 200'000;
  config.rebuild_hours = 500.0;
  config.mission_hours = 20'000;
  config.trials = 50'000;
  config.seed = 31;
  config.threads = 1;
  config.oracle = &oracle;

  (void)allocations_during(oi, config);
  EXPECT_LT(allocations_during(oi, config), 100u);
}

TEST(MonteCarloAllocation, BiasedTrialLoopDoesNotAllocate) {
  layout::OiRaidLayout oi({bibd::fano(), 3, 2, true});
  RecoverabilityOracle oracle(oi);

  BiasedMonteCarloConfig config;
  config.mttf_hours = 200'000;
  config.rebuild_hours = 500.0;
  config.mission_hours = 20'000;
  config.trials = 20'000;
  config.seed = 31;
  config.threads = 1;
  config.oracle = &oracle;
  config.failure_bias = 20.0;

  (void)biased_allocations_during(oi, config);
  EXPECT_LT(biased_allocations_during(oi, config), 100u);
}

}  // namespace
}  // namespace oi::reliability
