#include "reliability/oracle.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "bibd/constructions.hpp"
#include "layout/oi_raid.hpp"
#include "layout/raid5.hpp"
#include "util/rng.hpp"

namespace oi::reliability {
namespace {

layout::OiRaidLayout fano_oi() {
  return layout::OiRaidLayout({bibd::fano(), 3, 2, true});
}

/// Every failure pattern of size <= max_size over `disks`, in colex order.
std::vector<std::vector<std::size_t>> patterns_up_to(std::size_t disks,
                                                     std::size_t max_size) {
  std::vector<std::vector<std::size_t>> out;
  std::vector<std::size_t> current;
  // Iterative enumeration of all subsets of size 1..max_size.
  auto recurse = [&](auto&& self, std::size_t start) -> void {
    for (std::size_t d = start; d < disks; ++d) {
      current.push_back(d);
      out.push_back(current);
      if (current.size() < max_size) self(self, d + 1);
      current.pop_back();
    }
  };
  recurse(recurse, 0);
  return out;
}

TEST(RecoverabilityOracle, MatchesDirectDecodeExhaustively) {
  // Every failure pattern up to one past the guaranteed tolerance, checked
  // against recovery_plan() directly: 21 + C(21,2) + C(21,3) + C(21,4)
  // patterns on the compact Fano OI-RAID.
  const auto layout = fano_oi();
  RecoverabilityOracle oracle(layout);
  EXPECT_EQ(oracle.disks(), layout.disks());
  EXPECT_EQ(oracle.tolerance(), layout.fault_tolerance());

  std::size_t checked = 0;
  std::size_t unrecoverable = 0;
  for (const auto& pattern : patterns_up_to(layout.disks(), 4)) {
    const bool expected = layout.recovery_plan(pattern).has_value();
    EXPECT_EQ(oracle.recoverable(pattern), expected)
        << "pattern size " << pattern.size() << " first disk " << pattern[0];
    ++checked;
    if (!expected) ++unrecoverable;
  }
  EXPECT_EQ(checked, 21u + 210u + 1330u + 5985u);
  // The paper's point: only a small fraction of 4-failure patterns is fatal.
  EXPECT_GT(unrecoverable, 0u);
  EXPECT_LT(unrecoverable, 5985u / 10);

  // Everything at or below tolerance was answered by the trivial bound; the
  // 4-failure patterns each decoded exactly once.
  const auto stats = oracle.stats();
  EXPECT_EQ(stats.trivial, 21u + 210u + 1330u);
  EXPECT_EQ(stats.misses, 5985u);
  EXPECT_EQ(stats.entries, 5985u);
  EXPECT_EQ(stats.hits, 0u);
}

TEST(RecoverabilityOracle, RepeatQueriesHitTheCache) {
  const auto layout = fano_oi();
  RecoverabilityOracle oracle(layout);
  const std::vector<std::size_t> pattern{0, 1, 2, 3};
  const bool first = oracle.recoverable(pattern);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(oracle.recoverable(pattern), first);
  const auto stats = oracle.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 10u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(RecoverabilityOracle, ConcurrentHammeringStaysConsistent) {
  // Many threads querying overlapping random 4-failure patterns must agree
  // with the single-threaded truth; exercises shard locking and the
  // decode-outside-lock race (run under TSan in CI).
  const auto layout = fano_oi();
  RecoverabilityOracle truth(layout);
  RecoverabilityOracle oracle(layout);
  const std::size_t n = layout.disks();

  std::vector<std::vector<std::size_t>> queries;
  std::vector<bool> expected;
  Rng rng(71);
  for (int i = 0; i < 2000; ++i) {
    const auto pattern = rng.sample_without_replacement(n, 4);
    queries.push_back(pattern);
    expected.push_back(truth.recoverable(pattern));
  }

  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      for (std::size_t i = t % 7; i < queries.size(); ++i) {
        if (oracle.recoverable(queries[i]) != expected[i]) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(mismatches.load(), 0);

  // Distinct patterns decode at most once each even under contention; the
  // benign publish race allows the occasional duplicate decode but the
  // cache itself stays deduplicated.
  const auto stats = oracle.stats();
  EXPECT_LE(stats.entries, queries.size());
  EXPECT_GE(stats.hits, 1u);
}

TEST(RecoverabilityOracle, WideMaskPathBeyond64Disks) {
  // 70 disks forces the multi-word key path. RAID5: any 2 failures fatal.
  layout::Raid5Layout layout(70, 2);
  RecoverabilityOracle oracle(layout);
  EXPECT_EQ(oracle.tolerance(), 1u);
  EXPECT_TRUE(oracle.recoverable({69}));          // trivial: <= tolerance
  EXPECT_FALSE(oracle.recoverable({0, 69}));      // crosses the word boundary
  EXPECT_FALSE(oracle.recoverable({64, 65}));     // second word only
  EXPECT_FALSE(oracle.recoverable({0, 69}));      // cached
  const auto stats = oracle.stats();
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.trivial, 1u);

  // Direct word-span form agrees with the vector form.
  const std::uint64_t words[2] = {1ULL | (1ULL << 63), 0};
  EXPECT_FALSE(oracle.recoverable({words, 2}, 2));
}

TEST(RecoverabilityOracle, RejectsOutOfRangeDisk) {
  const auto layout = fano_oi();
  RecoverabilityOracle oracle(layout);
  EXPECT_THROW(oracle.recoverable({0, 99}), std::invalid_argument);
}

}  // namespace
}  // namespace oi::reliability
