// Scaling gates for the layout core: the sharded planner must emit plans
// byte-identical to the sequential planner (which is itself gated against the
// virtual-dispatch reference), the sharded scrub must report exactly what the
// sequential scrub reports, and the compact StripeMap must actually shrink
// the resident footprint. Quick sizes here (up to a few hundred disks); the
// thousand-disk points live in test_scale_long.cpp under the `long` label.
#include <algorithm>
#include <memory>
#include <optional>
#include <vector>

#include <gtest/gtest.h>

#include "bibd/constructions.hpp"
#include "bibd/registry.hpp"
#include "core/array.hpp"
#include "layout/concurrency_map.hpp"
#include "layout/oi_raid.hpp"
#include "layout/sharded_plan.hpp"
#include "layout/stripe_map.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace oi;
using namespace oi::layout;

void expect_plans_identical(
    const std::optional<std::vector<RecoveryStep>>& expected,
    const std::optional<std::vector<RecoveryStep>>& actual) {
  ASSERT_EQ(expected.has_value(), actual.has_value());
  if (!expected.has_value()) return;
  ASSERT_EQ(expected->size(), actual->size());
  for (std::size_t i = 0; i < expected->size(); ++i) {
    EXPECT_EQ((*expected)[i].lost, (*actual)[i].lost) << "step " << i;
    EXPECT_EQ((*expected)[i].reads, (*actual)[i].reads) << "step " << i;
  }
}

std::shared_ptr<const Layout> oi_layout(bibd::Design design, std::size_t m,
                                        std::size_t h) {
  return std::make_shared<OiRaidLayout>(OiRaidParams{std::move(design), m, h});
}

TEST(ShardedPlan, MatchesSequentialAcrossGeometriesAndThreadCounts) {
  const std::vector<std::shared_ptr<const Layout>> layouts = {
      oi_layout(bibd::fano(), 3, 6),
      oi_layout(bibd::affine_plane(3), 3, 6),
      oi_layout(bibd::bose_steiner_triple(15), 3, 6),
      oi_layout(bibd::projective_plane(3), 4, 12),
  };
  const std::vector<std::vector<std::size_t>> patterns = {
      {0}, {1}, {0, 1}, {0, 3, 7}, {2, 5}, {0, 1, 2}};
  for (const auto& layout : layouts) {
    const StripeMap& map = layout->stripe_map();
    const ConcurrencyMap& domains = layout->concurrency_map();
    for (std::size_t threads : {1, 2, 4}) {
      ThreadPool pool(threads);
      for (const auto& failed : patterns) {
        if (std::any_of(failed.begin(), failed.end(),
                        [&](std::size_t d) { return d >= layout->disks(); })) {
          continue;
        }
        const auto sequential = plan_by_peeling(map, failed);
        expect_plans_identical(
            sequential, plan_by_peeling_sharded(map, domains, pool, failed));
        expect_plans_identical(sequential,
                               layout->recovery_plan_parallel(failed, pool));
        if (sequential.has_value()) {
          EXPECT_EQ(check_recovery_plan(map, failed, *sequential), "");
        }
      }
    }
  }
}

TEST(ShardedPlan, EmptyFailureSetYieldsEmptyPlan) {
  const auto layout = oi_layout(bibd::fano(), 3, 2);
  ThreadPool pool(2);
  const auto plan = plan_by_peeling_sharded(
      layout->stripe_map(), layout->concurrency_map(), pool, {});
  ASSERT_TRUE(plan.has_value());
  EXPECT_TRUE(plan->empty());
}

TEST(ShardedPlan, UnrecoverablePatternsAgreeWithSequential) {
  const auto layout = oi_layout(bibd::fano(), 3, 2);
  const StripeMap& map = layout->stripe_map();
  const ConcurrencyMap& domains = layout->concurrency_map();
  ThreadPool pool(4);
  // Scan 4-disk patterns until the sequential planner declares one
  // unrecoverable (fault tolerance is 3, so some must exist), then require
  // the sharded planner to agree on every pattern either way.
  bool found_unrecoverable = false;
  for (std::size_t a = 0; a < 6 && !found_unrecoverable; ++a) {
    for (std::size_t b = a + 1; b < 8 && !found_unrecoverable; ++b) {
      const std::vector<std::size_t> failed = {a, b, b + 1, b + 2};
      const auto sequential = plan_by_peeling(map, failed);
      expect_plans_identical(
          sequential, plan_by_peeling_sharded(map, domains, pool, failed));
      if (!sequential.has_value()) found_unrecoverable = true;
    }
  }
  EXPECT_TRUE(found_unrecoverable);
}

TEST(ShardedPlan, RejectsBadFailureSets) {
  const auto layout = oi_layout(bibd::fano(), 3, 2);
  ThreadPool pool(2);
  EXPECT_THROW(plan_by_peeling_sharded(layout->stripe_map(),
                                       layout->concurrency_map(), pool, {99}),
               std::invalid_argument);
  EXPECT_THROW(plan_by_peeling_sharded(layout->stripe_map(),
                                       layout->concurrency_map(), pool, {1, 1}),
               std::invalid_argument);
}

// v = 91 (PG(2,9), k = 10): 273 disks. The compact IR must agree with the
// virtual-dispatch reference on relations and plans, and the sharded planner
// with both.
TEST(ScaleLayout, NinetyOnePointsByteIdenticalPlans) {
  const auto design = bibd::projective_plane(9);
  ASSERT_EQ(design.v, 91u);
  const auto layout = oi_layout(design, 3, 2);
  EXPECT_EQ(layout->disks(), 273u);
  const StripeMap& map = layout->stripe_map();
  EXPECT_EQ(check_relations(map), "");
  ThreadPool pool(4);
  const std::vector<std::vector<std::size_t>> patterns = {
      {0}, {0, 1}, {17, 100, 200}};
  for (const std::vector<std::size_t>& failed : patterns) {
    const auto reference = plan_by_peeling_virtual(*layout, failed);
    const auto compact = plan_by_peeling(map, failed);
    expect_plans_identical(reference, compact);
    expect_plans_identical(
        reference, plan_by_peeling_sharded(map, layout->concurrency_map(),
                                           pool, failed));
    ASSERT_TRUE(reference.has_value());
    EXPECT_EQ(check_recovery_plan(map, failed, *reference), "");
  }
}

TEST(ScaleLayout, CompactFootprintShrinksAt91Points) {
  const auto layout = oi_layout(bibd::projective_plane(9), 3, 2);
  const StripeMap& map = layout->stripe_map();
  EXPECT_GT(map.resident_bytes(), 0u);
  // The headline criterion (>= 2x at v >= 365) is gated by test_scale_long
  // and bench_scale; already at v = 91 the compact IR must beat half.
  EXPECT_GE(map.uncompressed_resident_bytes(), 2 * map.resident_bytes());
}

TEST(ShardedScrub, CleanArrayAgreesWithSequential) {
  core::Array array(oi_layout(bibd::fano(), 3, 2), 64);
  for (std::size_t l = 0; l < array.capacity_strips(); l += 3) {
    std::vector<std::uint8_t> data(64, static_cast<std::uint8_t>(l * 7 + 1));
    array.write(l, data);
  }
  ThreadPool pool(4);
  EXPECT_EQ(array.scrub(), "");
  EXPECT_EQ(array.scrub(pool), "");
}

TEST(ShardedScrub, ReportsTheSequentialFirstError) {
  core::Array array(oi_layout(bibd::fano(), 3, 2), 64);
  array.inject_corruption({5, 1});
  ThreadPool pool(4);
  const std::string sequential = array.scrub();
  ASSERT_NE(sequential, "");
  EXPECT_EQ(array.scrub(pool), sequential);
  // A second corruption elsewhere must not change which error wins: the
  // sharded sweep reports the smallest failing relation id, which is the
  // relation the sequential scrub hits first.
  array.inject_corruption({19, 0});
  const std::string sequential_two = array.scrub();
  ASSERT_NE(sequential_two, "");
  EXPECT_EQ(array.scrub(pool), sequential_two);
}

TEST(ShardedScrub, SkipsRelationsTouchingFailedDisks) {
  core::Array array(oi_layout(bibd::fano(), 3, 2), 64);
  array.fail_disk(4);
  ThreadPool pool(2);
  EXPECT_EQ(array.scrub(), "");
  EXPECT_EQ(array.scrub(pool), "");
  array.rebuild();
  EXPECT_EQ(array.scrub(), "");
  EXPECT_EQ(array.scrub(pool), "");
}

}  // namespace
