// Live telemetry subsystem: the JSONL time-series sampler, the flight-
// recorder crash dump, obs::Session wiring of the new surfaces, and the
// extension of the observability contract -- a Monte-Carlo campaign must be
// bit-identical with the full telemetry stack (sampler + exporter + trace
// ring) on vs off.
#include "util/telemetry_sampler.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "bibd/constructions.hpp"
#include "json_lint.hpp"
#include "layout/oi_raid.hpp"
#include "reliability/monte_carlo.hpp"
#include "util/assert.hpp"
#include "util/http_exporter.hpp"
#include "util/metrics.hpp"
#include "util/observability.hpp"
#include "util/telemetry_client.hpp"
#include "util/trace.hpp"

namespace oi::telemetry {
namespace {

std::string tmp_path(const std::string& name) {
  return ::testing::TempDir() + "oi_telemetry_" + name;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

class TelemetryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    metrics::Registry::instance().reset_values();
    metrics::set_enabled(true);
  }
  void TearDown() override {
    metrics::set_enabled(false);
    metrics::Registry::instance().reset_values();
  }
};

// Long interval: the background thread never fires during the test, so the
// records written are exactly the explicit sample_now() calls plus the
// destructor's terminal sample.
constexpr std::size_t kNeverMs = 60'000;

TEST_F(TelemetryTest, SamplerWritesHeaderAndDeltaCompressedRecords) {
  const std::string path = tmp_path("sampler.jsonl");
  metrics::Counter& c = metrics::Registry::instance().counter("test.tel.count");
  metrics::Gauge& g = metrics::Registry::instance().gauge("test.tel.gauge");
  {
    Sampler sampler(path, kNeverMs);
    c.add(3);
    g.set(1.5);
    sampler.sample_now();  // both metrics appear (first record carries all)
    sampler.sample_now();  // nothing changed: heartbeat record, "t" only
    c.add(2);
    sampler.sample_now();  // only the counter appears
    EXPECT_EQ(sampler.samples(), 3u);
  }  // terminal sample: nothing changed again -> heartbeat

  std::istringstream in(slurp(path));
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_NE(line.find("\"schema\": \"oi-metrics-stream\""), std::string::npos);
  EXPECT_NE(line.find("\"version\": 1"), std::string::npos);

  ASSERT_TRUE(std::getline(in, line));
  EXPECT_TRUE(oi::testing::JsonLint::well_formed(line)) << line;
  EXPECT_NE(line.find("\"test.tel.count\": 3"), std::string::npos);
  EXPECT_NE(line.find("\"test.tel.gauge\""), std::string::npos);

  ASSERT_TRUE(std::getline(in, line));  // heartbeat: no metric payload
  EXPECT_EQ(line.find("test.tel"), std::string::npos) << line;
  EXPECT_NE(line.find("\"t\": "), std::string::npos);

  ASSERT_TRUE(std::getline(in, line));  // delta: counter only
  EXPECT_NE(line.find("\"test.tel.count\": 5"), std::string::npos);
  EXPECT_EQ(line.find("test.tel.gauge"), std::string::npos) << line;

  ASSERT_TRUE(std::getline(in, line));  // terminal heartbeat
  EXPECT_FALSE(std::getline(in, line)) << "unexpected extra record: " << line;
  std::remove(path.c_str());
}

TEST_F(TelemetryTest, SamplerEmitsHistogramGeometryOnceAndCumulativeState) {
  const std::string path = tmp_path("sampler_hist.jsonl");
  metrics::FixedHistogram& h =
      metrics::Registry::instance().histogram("test.tel.hist", 0.0, 10.0, 2);
  {
    Sampler sampler(path, kNeverMs);
    h.record(1.0);
    sampler.sample_now();
    h.record(7.0);
    sampler.sample_now();
  }
  std::istringstream in(slurp(path));
  std::string header, first, second;
  ASSERT_TRUE(std::getline(in, header));
  ASSERT_TRUE(std::getline(in, first));
  ASSERT_TRUE(std::getline(in, second));
  // Geometry (low / bucket_width) only on first appearance; state cumulative.
  EXPECT_NE(first.find("\"bucket_width\": 5"), std::string::npos) << first;
  EXPECT_NE(first.find("\"counts\": [1, 0]"), std::string::npos) << first;
  EXPECT_EQ(second.find("bucket_width"), std::string::npos) << second;
  EXPECT_NE(second.find("\"counts\": [1, 1]"), std::string::npos) << second;
  EXPECT_NE(second.find("\"sum\": 8"), std::string::npos) << second;
  std::remove(path.c_str());
}

TEST_F(TelemetryTest, SamplerThrowsOnUnwritablePath) {
  EXPECT_THROW(Sampler("/nonexistent-dir/stream.jsonl", 100),
               std::invalid_argument);
  EXPECT_THROW(Sampler("", 100), std::invalid_argument);
  EXPECT_THROW(Sampler(tmp_path("x.jsonl"), 0), std::invalid_argument);
}

TEST_F(TelemetryTest, StreamFollowerTailsIncrementallyAcrossPartialLines) {
  const std::string path = tmp_path("follow.jsonl");
  std::ofstream out(path, std::ios::trunc);
  out << "{\"schema\": \"oi-metrics-stream\", \"version\": 1, \"interval_ms\": 50}\n";
  out.flush();

  StreamFollower follower(path);
  EXPECT_EQ(follower.poll(), 0u);  // header is not a record

  out << "{\"t\": 0.5, \"counters\": {\"a.b.c\": 2}, \"gauges\": {\"g.x.y\": -1.5}}\n";
  out << "{\"t\": 1.0, \"counters\"";  // partial record: must not be consumed
  out.flush();
  EXPECT_EQ(follower.poll(), 1u);
  EXPECT_EQ(follower.values().at("a.b.c"), 2.0);
  EXPECT_EQ(follower.values().at("g.x.y"), -1.5);
  EXPECT_EQ(follower.last_t(), 0.5);

  out << ": {\"a.b.c\": 9}, \"histograms\": {\"h.q.r\": {\"low\": 0, "
         "\"bucket_width\": 1, \"total\": 4, \"sum\": 3.5, \"counts\": [4]}}}\n";
  out.flush();
  EXPECT_EQ(follower.poll(), 1u);
  EXPECT_EQ(follower.values().at("a.b.c"), 9.0);
  EXPECT_EQ(follower.values().at("g.x.y"), -1.5);  // delta folding keeps old
  EXPECT_EQ(follower.values().at("h.q.r.count"), 4.0);
  EXPECT_EQ(follower.values().at("h.q.r.sum"), 3.5);
  EXPECT_EQ(follower.last_t(), 1.0);
  EXPECT_EQ(follower.records(), 2u);
  std::remove(path.c_str());
}

TEST_F(TelemetryTest, StreamFollowerToleratesMissingFileUntilItAppears) {
  const std::string path = tmp_path("late.jsonl");
  std::remove(path.c_str());
  StreamFollower follower(path);
  EXPECT_EQ(follower.poll(), 0u);
  {
    std::ofstream out(path, std::ios::trunc);
    out << "{\"t\": 2.0, \"gauges\": {\"x.y.z\": 7}}\n";
  }
  EXPECT_EQ(follower.poll(), 1u);
  EXPECT_EQ(follower.values().at("x.y.z"), 7.0);
  std::remove(path.c_str());
}

TEST_F(TelemetryTest, SamplerRoundTripsThroughTheFollower) {
  const std::string path = tmp_path("roundtrip.jsonl");
  metrics::Registry& reg = metrics::Registry::instance();
  reg.counter("test.tel.rt_counter").add(11);
  reg.gauge("test.tel.rt_gauge").set(0.25);
  reg.histogram("test.tel.rt_hist", 0.0, 4.0, 4).record(1.0);
  {
    Sampler sampler(path, kNeverMs);
    sampler.sample_now();
  }
  StreamFollower follower(path);
  follower.poll();
  EXPECT_EQ(find_metric(follower.values(), "test.tel.rt_counter"), 11.0);
  EXPECT_EQ(find_metric(follower.values(), "test.tel.rt_gauge"), 0.25);
  EXPECT_EQ(find_metric(follower.values(), "test.tel.rt_hist.count"), 1.0);
  std::remove(path.c_str());
}

// ---------------------------------------- client-side histogram views ----

TEST_F(TelemetryTest, HistogramDataQuantileInterpolates) {
  HistogramData h;
  h.low = 0.0;
  h.bucket_width = 100.0;
  h.counts = {50, 50, 0, 0};
  h.total = 100;
  h.sum = 100.0 * 50 + 150.0 * 50;  // unused by quantile
  EXPECT_EQ(HistogramData{}.quantile(0.99), 0.0);  // empty
  EXPECT_NEAR(h.quantile(0.50), 100.0, 1.0);  // boundary of the two buckets
  EXPECT_NEAR(h.quantile(0.25), 50.0, 1.0);   // middle of the first bucket
  EXPECT_NEAR(h.quantile(0.75), 150.0, 1.0);  // middle of the second
  EXPECT_NEAR(h.mean(), 125.0, 1e-9);
  // Mass in the open-ended last bucket clamps to its lower edge.
  HistogramData tail;
  tail.low = 0.0;
  tail.bucket_width = 100.0;
  tail.counts = {0, 0, 10};
  tail.total = 10;
  EXPECT_EQ(tail.quantile(0.99), 200.0);
}

TEST_F(TelemetryTest, ScrapeHistogramsRoundTripThroughTheParser) {
  // Real exporter output for a real registry histogram: the cumulative
  // `_bucket{le=...}` series (last finite bucket labelled +Inf) must fold
  // back into the original per-bucket counts and geometry.
  metrics::FixedHistogram& h = metrics::Registry::instance().histogram(
      "test.tel.scrape_hist", 0.0, 400.0, 4);
  h.record(50.0);    // bucket 0
  h.record(150.0);   // bucket 1
  h.record(150.0);   // bucket 1
  h.record(9999.0);  // clamps into the last (+Inf) bucket
  std::ostringstream os;
  metrics::Registry::instance().write_prometheus(os);
  const HistogramMap map = parse_prometheus_histograms(os.str());
  const auto found = find_histogram(map, "test.tel.scrape_hist");
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->low, 0.0);
  EXPECT_EQ(found->bucket_width, 100.0);
  ASSERT_EQ(found->counts.size(), 4u);
  EXPECT_EQ(found->counts[0], 1u);
  EXPECT_EQ(found->counts[1], 2u);
  EXPECT_EQ(found->counts[2], 0u);
  EXPECT_EQ(found->counts[3], 1u);
  EXPECT_EQ(found->total, 4u);
  EXPECT_GT(found->sum, 0.0);
  // p50 of {50,150,150,9999}: interpolated inside the second bucket.
  EXPECT_GE(found->quantile(0.50), 100.0);
  EXPECT_LE(found->quantile(0.50), 200.0);
  // Non-histogram lines are untouched; the map holds only histograms.
  for (const auto& [name, data] : map) {
    EXPECT_FALSE(data.counts.empty()) << name;
  }
}

TEST_F(TelemetryTest, StreamFollowerReconstructsHistograms) {
  const std::string path = tmp_path("follower_hist.jsonl");
  metrics::FixedHistogram& h = metrics::Registry::instance().histogram(
      "test.tel.fh", 0.0, 300.0, 3);
  h.record(50.0);
  {
    Sampler sampler(path, kNeverMs);
    sampler.sample_now();
    h.record(250.0);
    sampler.sample_now();  // re-emits the full counts array
  }
  StreamFollower follower(path);
  follower.poll();
  const auto found = find_histogram(follower.histograms(), "test.tel.fh");
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->low, 0.0);
  EXPECT_EQ(found->bucket_width, 100.0);
  ASSERT_EQ(found->counts.size(), 3u);
  EXPECT_EQ(found->counts[0], 1u);
  EXPECT_EQ(found->counts[1], 0u);
  EXPECT_EQ(found->counts[2], 1u);
  EXPECT_EQ(found->total, 2u);
  EXPECT_NEAR(found->sum, 300.0, 1e-9);
  std::remove(path.c_str());
}

// ------------------------------------------------ flight recorder dump ----

TEST(FlightRecorder, AssertFailureDumpsTheRingToDisk) {
  const std::string path = tmp_path("crash_dump.json");
  std::remove(path.c_str());
  trace::Tracer& tracer = trace::Tracer::instance();
  tracer.set_ring_capacity(3);
  tracer.start();
  trace::arm_crash_dump(path);
  for (int i = 0; i < 5; ++i) {
    tracer.counter(0, "crash.series", 0.001 * i, static_cast<double>(i));
  }
  EXPECT_EQ(tracer.event_count(), 3u);
  EXPECT_EQ(tracer.dropped_events(), 2u);

  // An OI_ASSERT violation (library bug) fires the failure hook on its way
  // to throwing; the armed dump must land even though the exception is
  // caught and the process keeps running.
  EXPECT_THROW(OI_ASSERT(false, "synthetic failure for the flight recorder"),
               std::logic_error);

  const std::string dump = slurp(path);
  EXPECT_TRUE(oi::testing::JsonLint::well_formed(dump)) << dump.substr(0, 200);
  // Ring semantics: the two oldest samples were overwritten, the last three
  // survive in chronological order.
  EXPECT_EQ(dump.find("\"args\": {\"value\": 0}"), std::string::npos);
  EXPECT_EQ(dump.find("\"args\": {\"value\": 1}"), std::string::npos);
  const std::size_t at2 = dump.find("\"args\": {\"value\": 2}");
  const std::size_t at3 = dump.find("\"args\": {\"value\": 3}");
  const std::size_t at4 = dump.find("\"args\": {\"value\": 4}");
  EXPECT_NE(at2, std::string::npos);
  EXPECT_NE(at3, std::string::npos);
  EXPECT_NE(at4, std::string::npos);
  EXPECT_LT(at2, at3);
  EXPECT_LT(at3, at4);

  trace::disarm_crash_dump();
  tracer.stop();
  tracer.set_ring_capacity(0);  // restore unbounded mode for other tests
  std::remove(path.c_str());
}

// --------------------------------------------------- obs::Session wiring ----

class SessionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Each Session declares the observability flags; isolate registrations.
    FlagRegistry::instance().clear();
    metrics::Registry::instance().reset_values();
  }
  void TearDown() override {
    FlagRegistry::instance().clear();
    metrics::set_enabled(false);
    metrics::Registry::instance().reset_values();
    trace::Tracer::instance().stop();
    trace::Tracer::instance().set_ring_capacity(0);
    trace::Tracer::instance().clear();
  }
};

TEST_F(SessionTest, UnwritableOutputPathsFailLoudlyAtConstruction) {
  const std::vector<std::string> flags_to_try = {"trace-out", "metrics-out",
                                                 "metrics-stream-out"};
  for (const std::string& flag : flags_to_try) {
    FlagRegistry::instance().clear();
    const Flags flags(
        std::vector<std::string>{"--" + flag, "/nonexistent-dir/out.json"});
    EXPECT_THROW(obs::Session{flags}, std::invalid_argument)
        << "--" << flag << " accepted an unwritable path";
  }
}

TEST_F(SessionTest, TraceRingRequiresTraceOut) {
  const Flags flags(std::vector<std::string>{"--trace-ring", "128"});
  EXPECT_THROW(obs::Session{flags}, std::invalid_argument);
}

TEST_F(SessionTest, InvalidIntervalAndPortAreRejected) {
  {
    const Flags flags(std::vector<std::string>{
        "--metrics-stream-out", tmp_path("s.jsonl"), "--metrics-interval-ms", "0"});
    EXPECT_THROW(obs::Session{flags}, std::invalid_argument);
  }
  FlagRegistry::instance().clear();
  {
    const Flags flags(std::vector<std::string>{"--metrics-port", "70000"});
    EXPECT_THROW(obs::Session{flags}, std::invalid_argument);
  }
}

TEST_F(SessionTest, FullStackLifecycleProducesEverySurface) {
  const std::string trace_path = tmp_path("session_trace.json");
  const std::string metrics_path = tmp_path("session_metrics.json");
  const std::string stream_path = tmp_path("session_stream.jsonl");
  const Flags flags(std::vector<std::string>{
      "--trace-out", trace_path, "--trace-ring", "4096", "--metrics-out",
      metrics_path, "--metrics-stream-out", stream_path,
      "--metrics-interval-ms", "60000", "--metrics-port", "0"});
  {
    obs::Session session(flags);
    EXPECT_TRUE(session.tracing());
    EXPECT_TRUE(session.metrics());
    EXPECT_TRUE(session.streaming());
    EXPECT_TRUE(session.exporting());
    EXPECT_TRUE(metrics::enabled());
    EXPECT_TRUE(trace::enabled());
    metrics::Registry::instance().counter("test.tel.session_counter").add(4);

    // The exporter is live while the session runs.
    ASSERT_GT(session.exporter_port(), 0);
    const MetricMap scraped = parse_prometheus_text(
        http_get("127.0.0.1", session.exporter_port(), "/metrics"));
    EXPECT_EQ(find_metric(scraped, "test.tel.session_counter"), 4.0);
  }
  EXPECT_FALSE(metrics::enabled());
  EXPECT_FALSE(trace::enabled());

  EXPECT_TRUE(oi::testing::JsonLint::well_formed(slurp(trace_path)));
  const std::string metrics_json = slurp(metrics_path);
  EXPECT_TRUE(oi::testing::JsonLint::well_formed(metrics_json));
  EXPECT_NE(metrics_json.find("test.tel.session_counter"), std::string::npos);

  StreamFollower follower(stream_path);
  follower.poll();
  EXPECT_GE(follower.records(), 1u);  // the sampler's terminal sample
  EXPECT_EQ(find_metric(follower.values(), "test.tel.session_counter"), 4.0);

  std::remove(trace_path.c_str());
  std::remove(metrics_path.c_str());
  std::remove(stream_path.c_str());
}

// ------------------------------------------- determinism with stack on ----

// Extends the TraceDeterminism gate (tests/test_trace.cpp) to the full live
// telemetry stack: a Monte-Carlo campaign with sampler + exporter + trace
// ring + live progress gauges running must produce bit-identical results to
// an uninstrumented one. Guards against instrumentation that consumes RNG
// draws, reorders trials, or feeds back into the estimators.
TEST(TelemetryDeterminism, McResultsBitIdenticalWithFullStackOnVsOff) {
  layout::OiRaidLayout layout({bibd::fano(), 3, 2, true});
  reliability::MonteCarloConfig config;
  config.mttf_hours = 20'000;
  config.rebuild_hours = 300.0;
  config.mission_hours = 20'000;
  config.trials = 6'000;  // enough for several LiveProgress flushes + losses
  config.seed = 7;
  config.threads = 4;

  metrics::set_enabled(false);
  trace::Tracer::instance().stop();
  const reliability::MonteCarloResult plain =
      reliability::monte_carlo_reliability(layout, config);

  const std::string stream_path = tmp_path("determinism.jsonl");
  reliability::MonteCarloResult instrumented;
  {
    trace::Tracer::instance().set_ring_capacity(512);
    trace::Tracer::instance().start();
    metrics::set_enabled(true);
    Sampler sampler(stream_path, 1);  // aggressive cadence: sample constantly
    HttpExporter exporter(0);
    instrumented = reliability::monte_carlo_reliability(layout, config);
    // Scrape mid-teardown too -- reads must never perturb.
    (void)http_get("127.0.0.1", exporter.port(), "/metrics");
  }
  metrics::set_enabled(false);
  trace::Tracer::instance().stop();
  trace::Tracer::instance().set_ring_capacity(0);
  trace::Tracer::instance().clear();
  std::remove(stream_path.c_str());

  const auto same_bits = [](double a, double b) {
    return std::memcmp(&a, &b, sizeof(double)) == 0;
  };
  EXPECT_EQ(plain.trials, instrumented.trials);
  EXPECT_EQ(plain.losses, instrumented.losses);
  EXPECT_GT(plain.losses, 0u) << "stress parameters were supposed to lose";
  EXPECT_TRUE(same_bits(plain.loss_probability, instrumented.loss_probability));
  EXPECT_TRUE(same_bits(plain.ci95, instrumented.ci95));
  EXPECT_TRUE(same_bits(plain.ci95_lo, instrumented.ci95_lo));
  EXPECT_TRUE(same_bits(plain.ci95_hi, instrumented.ci95_hi));
  EXPECT_TRUE(same_bits(plain.ess, instrumented.ess));
  EXPECT_TRUE(same_bits(plain.relative_error, instrumented.relative_error));
  EXPECT_TRUE(same_bits(plain.time_to_loss.mean(), instrumented.time_to_loss.mean()));
}

// Live gauges advance during a campaign and settle on the exact final state.
TEST(TelemetryDeterminism, LiveProgressGaugesSettleOnExactFinals) {
  layout::OiRaidLayout layout({bibd::fano(), 3, 2, true});
  reliability::MonteCarloConfig config;
  config.mttf_hours = 20'000;
  config.rebuild_hours = 300.0;
  config.mission_hours = 20'000;
  config.trials = 6'000;
  config.seed = 7;
  config.threads = 2;

  metrics::Registry::instance().reset_values();
  metrics::set_enabled(true);
  const reliability::MonteCarloResult result =
      reliability::monte_carlo_reliability(layout, config);
  metrics::Registry& reg = metrics::Registry::instance();
  EXPECT_EQ(reg.gauge("reliability.mc.trials_done").value(),
            static_cast<double>(result.trials));
  EXPECT_EQ(reg.gauge("reliability.mc.percent_complete").value(), 100.0);
  EXPECT_EQ(reg.gauge("reliability.mc.eta_seconds").value(), 0.0);
  EXPECT_EQ(reg.gauge("reliability.mc.losses_seen").value(),
            static_cast<double>(result.losses));
  EXPECT_EQ(reg.gauge("reliability.mc.ess").value(), result.ess);
  EXPECT_EQ(reg.gauge("reliability.mc.relative_error").value(),
            result.relative_error);
  EXPECT_GT(reg.gauge("reliability.mc.trials_per_second").value(), 0.0);
  metrics::set_enabled(false);
  metrics::Registry::instance().reset_values();
}

}  // namespace
}  // namespace oi::telemetry
