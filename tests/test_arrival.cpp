// Arrival processes and tenant streams (workload/arrival.hpp,
// workload/tenant.hpp): determinism per (spec, seed) -- including under
// concurrent consumption from many threads -- statistical sanity of each
// model, and the tenant-spec parser's grammar and error handling.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <thread>
#include <vector>

#include "workload/arrival.hpp"
#include "workload/tenant.hpp"

namespace oi::workload {
namespace {

std::vector<double> draw_gaps(const ArrivalSpec& spec, std::uint64_t seed,
                              int count) {
  const auto process = make_arrival(spec);
  Rng rng(seed);
  std::vector<double> gaps;
  gaps.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) gaps.push_back(process->next_seconds(rng));
  return gaps;
}

double mean(const std::vector<double>& xs) {
  return std::accumulate(xs.begin(), xs.end(), 0.0) /
         static_cast<double>(xs.size());
}

TEST(ArrivalDeterminism, SameSeedBitIdenticalGaps) {
  for (auto kind : {ArrivalSpec::Kind::kPoisson, ArrivalSpec::Kind::kBursty,
                    ArrivalSpec::Kind::kDiurnal, ArrivalSpec::Kind::kClosedLoop}) {
    ArrivalSpec spec;
    spec.kind = kind;
    const auto a = draw_gaps(spec, 7, 2000);
    const auto b = draw_gaps(spec, 7, 2000);
    // Bit-identical, not approximately equal: the bench baseline depends on
    // exact replay.
    EXPECT_EQ(a, b);
    const auto c = draw_gaps(spec, 8, 2000);
    EXPECT_NE(a, c);
  }
}

TEST(ArrivalDeterminism, ThreadCountCannotPerturbStreams) {
  // Reference: four tenant streams consumed serially.
  const auto specs = parse_tenant_list(
      "name=a,arrival=poisson,rate=500;"
      "name=b,arrival=bursty,rate=300;"
      "name=c,arrival=diurnal,rate=200,period-s=5;"
      "name=d,arrival=closed,thinkers=4,think-ms=2");
  constexpr std::size_t kCapacity = 1000;
  constexpr std::uint64_t kSeed = 99;
  constexpr int kOps = 5000;
  std::vector<std::vector<TenantOp>> serial(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    TenantStream stream(specs[i], kCapacity, kSeed);
    for (int n = 0; n < kOps; ++n) serial[i].push_back(stream.next());
  }
  // Same streams consumed from one thread each, racing.
  std::vector<std::vector<TenantOp>> threaded(specs.size());
  std::vector<std::thread> threads;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    threads.emplace_back([&, i] {
      TenantStream stream(specs[i], kCapacity, kSeed);
      for (int n = 0; n < kOps; ++n) threaded[i].push_back(stream.next());
    });
  }
  for (auto& t : threads) t.join();
  for (std::size_t i = 0; i < specs.size(); ++i) {
    ASSERT_EQ(serial[i].size(), threaded[i].size());
    for (int n = 0; n < kOps; ++n) {
      EXPECT_EQ(serial[i][static_cast<std::size_t>(n)].at_seconds,
                threaded[i][static_cast<std::size_t>(n)].at_seconds);
      EXPECT_EQ(serial[i][static_cast<std::size_t>(n)].logical,
                threaded[i][static_cast<std::size_t>(n)].logical);
      EXPECT_EQ(serial[i][static_cast<std::size_t>(n)].is_write,
                threaded[i][static_cast<std::size_t>(n)].is_write);
    }
  }
}

TEST(PoissonArrivalsTest, MeanGapMatchesRate) {
  ArrivalSpec spec;
  spec.rate_per_second = 250.0;
  const auto gaps = draw_gaps(spec, 1, 50000);
  EXPECT_NEAR(mean(gaps), 1.0 / 250.0, 0.1 / 250.0);
  for (double g : gaps) EXPECT_GE(g, 0.0);
}

TEST(BurstyArrivalsTest, LongRunRateAndStateRates) {
  ArrivalSpec spec;
  spec.kind = ArrivalSpec::Kind::kBursty;
  spec.rate_per_second = 100.0;
  spec.burst_multiplier = 8.0;
  spec.burst_fraction = 0.1;
  spec.burst_seconds = 0.05;
  BurstyArrivals process(spec.rate_per_second, spec.burst_multiplier,
                         spec.burst_fraction, spec.burst_seconds);
  // mean = f*high + (1-f)*low must reproduce the requested long-run rate.
  EXPECT_NEAR(0.1 * process.high_rate() + 0.9 * process.low_rate(), 100.0, 1e-9);
  EXPECT_NEAR(process.high_rate(), 8.0 * process.low_rate(), 1e-9);
  const auto gaps = draw_gaps(spec, 3, 100000);
  EXPECT_NEAR(mean(gaps), 1.0 / 100.0, 0.05 / 100.0);
}

TEST(BurstyArrivalsTest, BurstsAreBurstier) {
  // Squared coefficient of variation: Poisson gaps have CV^2 = 1; an MMPP
  // with a high-rate state must exceed it.
  ArrivalSpec spec;
  spec.kind = ArrivalSpec::Kind::kBursty;
  spec.rate_per_second = 100.0;
  spec.burst_multiplier = 16.0;
  spec.burst_fraction = 0.1;
  spec.burst_seconds = 0.5;
  const auto gaps = draw_gaps(spec, 4, 100000);
  const double m = mean(gaps);
  double var = 0.0;
  for (double g : gaps) var += (g - m) * (g - m);
  var /= static_cast<double>(gaps.size());
  EXPECT_GT(var / (m * m), 1.2);
}

TEST(DiurnalArrivalsTest, RateModulatesAndMeanHolds) {
  DiurnalArrivals process(100.0, 60.0, 0.8);
  EXPECT_NEAR(process.rate_at(0.0), 100.0, 1e-9);
  EXPECT_NEAR(process.rate_at(15.0), 180.0, 1e-9);   // peak at period/4
  EXPECT_NEAR(process.rate_at(45.0), 20.0, 1e-9);    // trough at 3*period/4
  ArrivalSpec spec;
  spec.kind = ArrivalSpec::Kind::kDiurnal;
  spec.rate_per_second = 100.0;
  spec.period_seconds = 2.0;  // many full periods inside the sample
  spec.amplitude = 0.8;
  const auto gaps = draw_gaps(spec, 5, 100000);
  EXPECT_NEAR(mean(gaps), 1.0 / 100.0, 0.05 / 100.0);
}

TEST(ClosedLoopArrivalsTest, ThinkTimeDraws) {
  ArrivalSpec spec;
  spec.kind = ArrivalSpec::Kind::kClosedLoop;
  spec.thinkers = 4;
  spec.think_seconds = 0.004;
  const auto gaps = draw_gaps(spec, 6, 50000);
  EXPECT_NEAR(mean(gaps), 0.004, 0.0004);
  spec.think_seconds = 0.0;
  for (double g : draw_gaps(spec, 6, 100)) EXPECT_EQ(g, 0.0);
}

TEST(ArrivalValidation, RejectsBadParameters) {
  ArrivalSpec spec;
  spec.rate_per_second = 0.0;
  EXPECT_THROW(make_arrival(spec), std::invalid_argument);
  spec = {};
  spec.kind = ArrivalSpec::Kind::kBursty;
  spec.burst_fraction = 1.0;
  EXPECT_THROW(make_arrival(spec), std::invalid_argument);
  spec = {};
  spec.kind = ArrivalSpec::Kind::kDiurnal;
  spec.amplitude = 1.0;  // would make the trough rate zero
  EXPECT_THROW(make_arrival(spec), std::invalid_argument);
  spec = {};
  spec.kind = ArrivalSpec::Kind::kClosedLoop;
  spec.thinkers = 0;
  EXPECT_THROW(make_arrival(spec), std::invalid_argument);
}

TEST(TenantStreamTest, MonotoneClockAndWorkingSetBound) {
  TenantSpec spec = parse_tenant_spec(
      "name=t,arrival=poisson,rate=1000,access=uniform,read=0.5,ws=0.25");
  TenantStream stream(spec, 4000, 11);
  EXPECT_EQ(stream.strips(), 1000u);
  double last = 0.0;
  std::size_t writes = 0;
  for (int i = 0; i < 20000; ++i) {
    const TenantOp op = stream.next();
    EXPECT_GE(op.at_seconds, last);
    last = op.at_seconds;
    EXPECT_LT(op.logical, 1000u);
    writes += op.is_write ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(writes) / 20000.0, 0.5, 0.02);
}

TEST(TenantStreamTest, TenantsSharingBenchSeedAreIndependent) {
  // One bench-level seed, two tenants with identical specs except the id:
  // the id-mixed per-tenant seeding must decorrelate their streams.
  TenantSpec a = parse_tenant_spec("name=x,id=1,arrival=poisson,rate=100");
  TenantSpec b = parse_tenant_spec("name=y,id=2,arrival=poisson,rate=100");
  TenantStream sa(a, 100, 42), sb(b, 100, 42);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (sa.next().at_seconds == sb.next().at_seconds) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(ParseTenantSpecTest, FullGrammarRoundTrip) {
  const TenantSpec spec = parse_tenant_spec(
      "name=lat,id=7,arrival=bursty,rate=400,burst-mult=6,burst-frac=0.2,"
      "burst-s=0.5,access=zipf,theta=0.95,read=0.9,ws=0.5,bytes=8192,"
      "slo-p99-us=2500");
  EXPECT_EQ(spec.name, "lat");
  EXPECT_EQ(spec.id, 7);
  EXPECT_EQ(spec.arrival.kind, ArrivalSpec::Kind::kBursty);
  EXPECT_EQ(spec.arrival.rate_per_second, 400.0);
  EXPECT_EQ(spec.arrival.burst_multiplier, 6.0);
  EXPECT_EQ(spec.arrival.burst_fraction, 0.2);
  EXPECT_EQ(spec.arrival.burst_seconds, 0.5);
  EXPECT_EQ(spec.access.kind, WorkloadSpec::Kind::kZipf);
  EXPECT_EQ(spec.access.zipf_theta, 0.95);
  EXPECT_EQ(spec.access.read_fraction, 0.9);
  EXPECT_EQ(spec.working_set, 0.5);
  EXPECT_EQ(spec.request_bytes, 8192u);
  EXPECT_EQ(spec.slo.p99_us, 2500.0);
}

TEST(ParseTenantSpecTest, DiurnalAndClosedKeys) {
  const TenantSpec diurnal =
      parse_tenant_spec("name=d,arrival=diurnal,rate=50,period-s=30,amp=0.5");
  EXPECT_EQ(diurnal.arrival.kind, ArrivalSpec::Kind::kDiurnal);
  EXPECT_EQ(diurnal.arrival.period_seconds, 30.0);
  EXPECT_EQ(diurnal.arrival.amplitude, 0.5);
  const TenantSpec closed =
      parse_tenant_spec("name=c,arrival=closed,thinkers=16,think-ms=5");
  EXPECT_EQ(closed.arrival.kind, ArrivalSpec::Kind::kClosedLoop);
  EXPECT_EQ(closed.arrival.thinkers, 16u);
  EXPECT_NEAR(closed.arrival.think_seconds, 0.005, 1e-12);
}

TEST(ParseTenantSpecTest, RejectsMalformedInput) {
  EXPECT_THROW(parse_tenant_spec("name=x,unknown-key=1"), std::invalid_argument);
  EXPECT_THROW(parse_tenant_spec("name=x,arrival=lunar"), std::invalid_argument);
  EXPECT_THROW(parse_tenant_spec("name=x,rate=fast"), std::invalid_argument);
  EXPECT_THROW(parse_tenant_spec("name"), std::invalid_argument);
  EXPECT_THROW(parse_tenant_spec("name=x,id=0"), std::invalid_argument);
  EXPECT_THROW(parse_tenant_spec("name=x,id=70000"), std::invalid_argument);
}

TEST(ParseTenantListTest, AutoNumbersAndRejectsDuplicates) {
  const auto tenants = parse_tenant_list(
      "name=a;name=b,id=5;name=c");
  ASSERT_EQ(tenants.size(), 3u);
  EXPECT_EQ(tenants[0].id, 1);
  EXPECT_EQ(tenants[1].id, 5);
  EXPECT_EQ(tenants[2].id, 2);
  EXPECT_THROW(parse_tenant_list("name=a,id=3;name=b,id=3"),
               std::invalid_argument);
  EXPECT_THROW(parse_tenant_list("name=a;name=a"), std::invalid_argument);
}

}  // namespace
}  // namespace oi::workload
