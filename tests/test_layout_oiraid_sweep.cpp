// Property sweep: the OI-RAID structural invariants across a wide grid of
// geometries (design family x group size x region height x skew). Everything
// here must hold for *every* admissible configuration, not just the paper's
// running example -- this is the battery that catches layout regressions.
#include <gtest/gtest.h>

#include <map>

#include "bibd/constructions.hpp"
#include "bibd/registry.hpp"
#include "layout/analysis.hpp"
#include "layout/oi_raid.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace oi::layout {
namespace {

struct SweepCase {
  std::string label;
  std::size_t v;
  std::size_t k;
  std::size_t m;
  std::size_t h;
  bool skew;
};

OiRaidLayout build(const SweepCase& c) {
  auto design = bibd::find_design(c.v, c.k);
  if (!design) throw std::runtime_error("no design for sweep case " + c.label);
  return OiRaidLayout({std::move(*design), c.m, c.h, c.skew});
}

class OiRaidSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(OiRaidSweep, MappingBijective) {
  const auto layout = build(GetParam());
  EXPECT_EQ(check_mapping(layout), "");
}

TEST_P(OiRaidSweep, RelationsWellFormed) {
  const auto layout = build(GetParam());
  EXPECT_EQ(check_relations(layout), "");
}

TEST_P(OiRaidSweep, DataFractionMatchesClosedForm) {
  const auto layout = build(GetParam());
  EXPECT_NEAR(layout.data_fraction(),
              oi_raid_data_fraction(GetParam().k, GetParam().m), 1e-12);
}

TEST_P(OiRaidSweep, RoleCountsMatchFormulas) {
  const auto layout = build(GetParam());
  std::map<StripRole, std::size_t> counts;
  for (std::size_t d = 0; d < layout.disks(); ++d) {
    for (std::size_t o = 0; o < layout.strips_per_disk(); ++o) {
      ++counts[layout.inspect({d, o}).role];
    }
  }
  const std::size_t total = layout.total_strips();
  const std::size_t m = GetParam().m;
  const std::size_t k = GetParam().k;
  EXPECT_EQ(counts[StripRole::kParity], total / m);
  EXPECT_EQ(counts[StripRole::kOuterParity], total * (m - 1) / m / k);
  EXPECT_EQ(counts[StripRole::kData], total * (m - 1) / m * (k - 1) / k);
}

TEST_P(OiRaidSweep, SingleFailurePlanValidAndOffOwnGroup) {
  const auto layout = build(GetParam());
  const std::size_t failed = layout.disks() / 3;
  const auto plan = layout.recovery_plan({failed});
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(check_recovery_plan(layout, {failed}, *plan), "");
  const std::size_t m = GetParam().m;
  for (const auto& step : *plan) {
    for (const auto& read : step.reads) {
      EXPECT_NE(read.disk / m, failed / m) << "read on the failed group";
    }
  }
}

TEST_P(OiRaidSweep, SkewKeepsRecoveryBalanced) {
  const SweepCase& c = GetParam();
  if (!c.skew || c.m == 2) GTEST_SKIP() << "balance claim applies to skewed m>2";
  // The skew's slot rotations close over m*(m-1)^2 offsets (band cascade);
  // below that height the uniformity guarantee does not yet apply.
  if (c.h % (c.m * (c.m - 1) * (c.m - 1)) != 0) {
    GTEST_SKIP() << "height below the skew closure period";
  }
  const auto layout = build(c);
  const auto plan = layout.recovery_plan({0});
  const auto reads = per_disk_read_load(layout, {0}, *plan);
  std::vector<double> active;
  for (std::size_t d = c.m; d < reads.size(); ++d) active.push_back(reads[d]);
  EXPECT_LE(max_over_mean(active), 1.35) << layout.name();
}

TEST_P(OiRaidSweep, WritePlanAlwaysThreeParityUpdates) {
  const auto layout = build(GetParam());
  const std::size_t stride = std::max<std::size_t>(1, layout.data_strips() / 31);
  for (std::size_t logical = 0; logical < layout.data_strips(); logical += stride) {
    EXPECT_EQ(layout.small_write_plan(logical).parity_updates, 3u);
  }
}

TEST_P(OiRaidSweep, SampledTripleFailuresRecoverable) {
  const auto layout = build(GetParam());
  oi::Rng rng(99);
  for (int trial = 0; trial < 25; ++trial) {
    const auto pattern = rng.sample_without_replacement(layout.disks(), 3);
    EXPECT_TRUE(layout.recovery_plan(pattern).has_value())
        << layout.name() << " pattern " << pattern[0] << "," << pattern[1] << ","
        << pattern[2];
  }
}

std::vector<SweepCase> sweep_cases() {
  std::vector<SweepCase> cases;
  // (v, k) families x group sizes x heights; heights are multiples of
  // m*(m-1) so the skew rotations close.
  const std::vector<std::pair<std::size_t, std::size_t>> designs = {
      {7, 3}, {9, 3}, {13, 3}, {15, 3}, {13, 4}, {21, 5}, {25, 5},
  };
  for (const auto& [v, k] : designs) {
    for (std::size_t m : {2, 3, 4}) {
      const std::size_t period = std::max<std::size_t>(1, m * (m - 1));
      for (std::size_t mult : {1, 2}) {
        cases.push_back({"v" + std::to_string(v) + "k" + std::to_string(k) + "m" +
                             std::to_string(m) + "h" + std::to_string(period * mult),
                         v, k, m, period * mult, true});
      }
    }
  }
  // A few unskewed variants: all invariants except balance must still hold.
  cases.push_back({"v7k3m3h6_noskew", 7, 3, 3, 6, false});
  cases.push_back({"v13k4m4h12_noskew", 13, 4, 4, 12, false});
  // Balance-qualified tall cases: heights at the full skew closure period
  // m*(m-1)^2 for larger group sizes.
  cases.push_back({"v7k3m4h36", 7, 3, 4, 36, true});
  cases.push_back({"v13k4m4h36", 13, 4, 4, 36, true});
  cases.push_back({"v21k5m5h80", 21, 5, 5, 80, true});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Grid, OiRaidSweep, ::testing::ValuesIn(sweep_cases()),
                         [](const auto& info) { return info.param.label; });

}  // namespace
}  // namespace oi::layout
