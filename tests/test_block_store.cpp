// BlockStore backend contract: geometry, strip round trips, trim fill,
// flush, and -- for the file backend -- real persistence across close/reopen
// plus loud rejection of geometry mismatches (a resized image means the
// superblock and the data files disagree; trusting either would scramble
// the address map).
#include "core/block_store.hpp"

#include <gtest/gtest.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdlib>
#include <fstream>
#include <functional>
#include <memory>

namespace oi::core {
namespace {

std::string make_tmpdir() {
  char tmpl[] = "/tmp/oi-blockstore-XXXXXX";
  const char* dir = ::mkdtemp(tmpl);
  EXPECT_NE(dir, nullptr);
  return std::string(dir);
}

struct BackendCase {
  std::string label;
  std::function<std::unique_ptr<BlockStore>(std::size_t disks, std::size_t strips,
                                            std::size_t strip_bytes)>
      make;
};

class BlockStoreContract : public ::testing::TestWithParam<BackendCase> {};

TEST_P(BlockStoreContract, GeometryAndZeroInitialContents) {
  const auto store = GetParam().make(3, 4, 64);
  EXPECT_EQ(store->disks(), 3u);
  EXPECT_EQ(store->strips_per_disk(), 4u);
  EXPECT_EQ(store->strip_bytes(), 64u);
  std::vector<std::uint8_t> buf(64, 0xAA);
  store->read(2, 3, buf);
  EXPECT_EQ(buf, std::vector<std::uint8_t>(64, 0));
}

TEST_P(BlockStoreContract, WriteReadRoundTripPerStrip) {
  const auto store = GetParam().make(2, 3, 32);
  std::vector<std::uint8_t> a(32), b(32);
  for (std::size_t i = 0; i < 32; ++i) {
    a[i] = static_cast<std::uint8_t>(i);
    b[i] = static_cast<std::uint8_t>(255 - i);
  }
  store->write(0, 1, a);
  store->write(1, 2, b);
  std::vector<std::uint8_t> out(32);
  store->read(0, 1, out);
  EXPECT_EQ(out, a);
  store->read(1, 2, out);
  EXPECT_EQ(out, b);
  // Neighbors stay untouched (no slot bleed, even with 512-byte file slots).
  store->read(0, 0, out);
  EXPECT_EQ(out, std::vector<std::uint8_t>(32, 0));
  store->read(0, 2, out);
  EXPECT_EQ(out, std::vector<std::uint8_t>(32, 0));
}

TEST_P(BlockStoreContract, TrimFillsWholeDiskOnly) {
  const auto store = GetParam().make(2, 2, 16);
  std::vector<std::uint8_t> data(16, 0x11);
  store->write(0, 0, data);
  store->write(1, 1, data);
  store->trim_disk(0, 0xDD);
  std::vector<std::uint8_t> out(16);
  for (std::size_t o = 0; o < 2; ++o) {
    store->read(0, o, out);
    EXPECT_EQ(out, std::vector<std::uint8_t>(16, 0xDD)) << "offset " << o;
  }
  store->read(1, 1, out);
  EXPECT_EQ(out, data);
  store->flush();
}

INSTANTIATE_TEST_SUITE_P(
    Backends, BlockStoreContract,
    ::testing::Values(
        BackendCase{"mem",
                    [](std::size_t d, std::size_t s, std::size_t b) {
                      return std::make_unique<MemBlockStore>(d, s, b);
                    }},
        BackendCase{"file",
                    [](std::size_t d, std::size_t s,
                       std::size_t b) -> std::unique_ptr<BlockStore> {
                      return std::make_unique<FileBlockStore>(
                          make_tmpdir() + "/disks", d, s, b);
                    }}),
    [](const auto& info) { return info.param.label; });

TEST(FileBlockStore, PersistsAcrossReopen) {
  const std::string dir = make_tmpdir() + "/disks";
  std::vector<std::uint8_t> data(40);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i * 7);
  }
  {
    FileBlockStore store(dir, 2, 3, 40);
    store.write(1, 2, data);
    store.flush();
  }
  FileBlockStore reopened(dir, 2, 3, 40);
  std::vector<std::uint8_t> out(40);
  reopened.read(1, 2, out);
  EXPECT_EQ(out, data);
  EXPECT_EQ(reopened.describe(), "file:" + dir);
}

TEST(FileBlockStore, RejectsGeometryMismatchOnReopen) {
  const std::string dir = make_tmpdir() + "/disks";
  { FileBlockStore store(dir, 2, 3, 40); }
  // Same dir, different strips_per_disk -> different file size -> reject.
  EXPECT_THROW(FileBlockStore(dir, 2, 5, 40), std::invalid_argument);
  // A truncated image (simulated partial copy) is rejected too.
  ASSERT_EQ(::truncate((dir + "/disk-0.img").c_str(), 100), 0);
  EXPECT_THROW(FileBlockStore(dir, 2, 3, 40), std::invalid_argument);
}

TEST(FileBlockStore, SlotAlignmentPadsOddStripSizes) {
  const std::string dir = make_tmpdir() + "/disks";
  FileBlockStore store(dir, 1, 3, 17);  // 17 -> one 512-byte slot per strip
  struct stat st{};
  ASSERT_EQ(::stat((dir + "/disk-0.img").c_str(), &st), 0);
  EXPECT_EQ(st.st_size, 3 * 512);
}

TEST(BlockStoreValidation, RejectsDegenerateGeometry) {
  EXPECT_THROW(MemBlockStore(0, 1, 16), std::invalid_argument);
  EXPECT_THROW(MemBlockStore(1, 0, 16), std::invalid_argument);
  EXPECT_THROW(MemBlockStore(1, 1, 0), std::invalid_argument);
  EXPECT_THROW(FileBlockStore("", 1, 1, 16), std::invalid_argument);
}

}  // namespace
}  // namespace oi::core
