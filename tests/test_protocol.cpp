// Wire-format tests for the OIRD protocol: header round-trips, the opt-in
// trace-id extension, wire compatibility with pre-tracing clients (pad byte
// always zero), and rejection of truncated/hostile/garbage headers. These
// run entirely in memory -- the socket paths are covered by test_server.
#include <gtest/gtest.h>

#include <cstring>
#include <random>

#include "server/protocol.hpp"

namespace oi::server {
namespace {

// A syntactically valid 20-byte header built field by field, so tests can
// corrupt individual bytes without going through encode_frame().
std::vector<std::uint8_t> raw_header(std::uint8_t op, std::uint8_t pad,
                                     std::uint16_t tenant, std::uint64_t arg,
                                     std::uint32_t payload_len) {
  std::vector<std::uint8_t> h(kHeaderBytes, 0);
  std::memcpy(h.data(), kMagic, 4);
  h[4] = op;
  h[5] = pad;
  h[6] = static_cast<std::uint8_t>(tenant);
  h[7] = static_cast<std::uint8_t>(tenant >> 8);
  for (int i = 0; i < 8; ++i) h[8 + i] = static_cast<std::uint8_t>(arg >> (8 * i));
  for (int i = 0; i < 4; ++i) {
    h[16 + i] = static_cast<std::uint8_t>(payload_len >> (8 * i));
  }
  return h;
}

TEST(Protocol, UntracedFrameRoundTrips) {
  Frame in{Op::kWrite};
  in.tenant = 7;
  in.arg = 0x1122334455667788ull;
  in.payload = {1, 2, 3};
  const auto bytes = encode_frame(in);
  ASSERT_EQ(bytes.size(), kHeaderBytes + 3);
  // Byte 5 is the old reserved pad: untraced requests keep it zero, so an
  // old server sees exactly the pre-tracing wire format.
  EXPECT_EQ(bytes[5], 0);

  Frame out;
  const auto info = decode_header({bytes.data(), kHeaderBytes}, out);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->payload_len, 3u);
  EXPECT_EQ(info->extension_len, 0u);
  EXPECT_EQ(out.op, Op::kWrite);
  EXPECT_EQ(out.tenant, 7);
  EXPECT_EQ(out.arg, in.arg);
  EXPECT_EQ(out.trace_id, 0u);
}

TEST(Protocol, TracedFrameRoundTrips) {
  Frame in{Op::kRead};
  in.trace_id = 0x0102030405060708ull;
  in.payload = {9};
  const auto bytes = encode_frame(in);
  ASSERT_EQ(bytes.size(), kHeaderBytes + kTraceIdBytes + 1);
  EXPECT_EQ(bytes[5] & kTraceFlag, kTraceFlag);
  // The extension is little-endian, directly after the header.
  EXPECT_EQ(bytes[kHeaderBytes], 0x08);
  EXPECT_EQ(bytes[kHeaderBytes + 7], 0x01);

  Frame out;
  const auto info = decode_header({bytes.data(), kHeaderBytes}, out);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->extension_len, kTraceIdBytes);
  EXPECT_EQ(out.trace_id, 0u);  // decode_header never fills the id itself
  decode_extension({bytes.data() + kHeaderBytes, kTraceIdBytes}, out);
  EXPECT_EQ(out.trace_id, in.trace_id);
}

TEST(Protocol, TraceIdExtremesSurvive) {
  for (const std::uint64_t id :
       {std::uint64_t{1}, std::uint64_t{0xff}, ~std::uint64_t{0},
        std::uint64_t{1} << 63}) {
    Frame in{Op::kPing};
    in.trace_id = id;
    const auto bytes = encode_frame(in);
    Frame out;
    const auto info = decode_header({bytes.data(), kHeaderBytes}, out);
    ASSERT_TRUE(info.has_value());
    ASSERT_EQ(info->extension_len, kTraceIdBytes);
    decode_extension({bytes.data() + kHeaderBytes, kTraceIdBytes}, out);
    EXPECT_EQ(out.trace_id, id);
  }
}

TEST(Protocol, StatusBitsShareByteFiveWithTraceFlag) {
  Frame response{Op::kRead};
  response.status = Status::kError;
  response.trace_id = 42;
  const auto bytes = encode_frame(response);
  EXPECT_EQ(bytes[5], static_cast<std::uint8_t>(Status::kError) | kTraceFlag);
  Frame out;
  const auto info = decode_header({bytes.data(), kHeaderBytes}, out);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(out.status, Status::kError);
  EXPECT_EQ(info->extension_len, kTraceIdBytes);
}

TEST(Protocol, OldStyleZeroPadHeaderDecodesUntraced) {
  // A pre-tracing client writes the pad byte as literal zero; the decoder
  // must treat that as "no extension" so old clients keep working.
  const auto h = raw_header(static_cast<std::uint8_t>(Op::kStatus), 0, 0, 0, 0);
  Frame out;
  const auto info = decode_header({h.data(), h.size()}, out);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->extension_len, 0u);
  EXPECT_EQ(out.trace_id, 0u);
  EXPECT_EQ(out.status, Status::kOk);
}

TEST(Protocol, TruncatedHeadersAreRejected) {
  const auto h = raw_header(static_cast<std::uint8_t>(Op::kPing), 0, 0, 0, 0);
  for (std::size_t n = 0; n < kHeaderBytes; ++n) {
    Frame out;
    EXPECT_FALSE(decode_header({h.data(), n}, out).has_value()) << n;
  }
  // Oversized spans are a caller bug, but must not be read past 20 bytes.
  std::vector<std::uint8_t> long_h(h);
  long_h.resize(kHeaderBytes + 4, 0xee);
  Frame out;
  EXPECT_FALSE(decode_header({long_h.data(), long_h.size()}, out).has_value());
}

TEST(Protocol, BadMagicIsRejected) {
  auto h = raw_header(static_cast<std::uint8_t>(Op::kPing), 0, 0, 0, 0);
  for (std::size_t i = 0; i < 4; ++i) {
    auto bad = h;
    bad[i] ^= 0x20;
    Frame out;
    EXPECT_FALSE(decode_header({bad.data(), bad.size()}, out).has_value()) << i;
  }
}

TEST(Protocol, HostileLengthsAreRejected) {
  for (const std::uint32_t len :
       {kMaxPayload + 1, 0xffffffffu, kMaxPayload + 12345u}) {
    const auto h = raw_header(static_cast<std::uint8_t>(Op::kWrite), 0, 0, 0, len);
    Frame out;
    EXPECT_FALSE(decode_header({h.data(), h.size()}, out).has_value()) << len;
  }
  // The boundary itself is legal.
  const auto h =
      raw_header(static_cast<std::uint8_t>(Op::kWrite), 0, 0, 0, kMaxPayload);
  Frame out;
  const auto info = decode_header({h.data(), h.size()}, out);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->payload_len, kMaxPayload);
}

TEST(Protocol, UnknownOpcodesPassThroughForTheServerToReject) {
  // The header layer is deliberately opcode-agnostic: an unknown op decodes
  // fine and the server answers it with a kError frame (covered by
  // test_server); rejecting here would close the connection instead, which
  // breaks forward compatibility with newer clients.
  const auto h = raw_header(0x7f, 0, 0, 0, 0);
  Frame out;
  const auto info = decode_header({h.data(), h.size()}, out);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(static_cast<std::uint8_t>(out.op), 0x7f);
}

TEST(Protocol, RandomHeadersNeverCrashAndObeyTheContract) {
  std::mt19937_64 rng(20260808);
  std::size_t accepted = 0;
  for (int i = 0; i < 20000; ++i) {
    std::vector<std::uint8_t> h(kHeaderBytes);
    for (auto& b : h) b = static_cast<std::uint8_t>(rng());
    // Half the trials get the right magic so the later fields are exercised,
    // not just the magic check.
    if ((i & 1) != 0) std::memcpy(h.data(), kMagic, 4);
    Frame out;
    const auto info = decode_header({h.data(), h.size()}, out);
    if (std::memcmp(h.data(), kMagic, 4) != 0) {
      EXPECT_FALSE(info.has_value());
      continue;
    }
    if (!info.has_value()) continue;  // hostile length, by construction
    ++accepted;
    EXPECT_LE(info->payload_len, kMaxPayload);
    EXPECT_TRUE(info->extension_len == 0 ||
                info->extension_len == kTraceIdBytes);
    EXPECT_EQ(info->extension_len != 0, (h[5] & kTraceFlag) != 0);
    EXPECT_EQ(out.trace_id, 0u);
    EXPECT_LE(static_cast<std::uint8_t>(out.status), 0x7f);
  }
  // A random u32 length is almost never <= 64 MiB, but the magic-fixed half
  // with small lengths must have produced *some* accepted decodes.
  EXPECT_GT(accepted, 0u);
}

TEST(Protocol, EncodeDecodeFuzzRoundTrip) {
  std::mt19937_64 rng(7);
  for (int i = 0; i < 2000; ++i) {
    Frame in{static_cast<Op>(rng() % 7)};
    in.status = static_cast<Status>(rng() % 2);
    in.tenant = static_cast<std::uint16_t>(rng());
    in.arg = rng();
    in.trace_id = (i % 3 == 0) ? 0 : rng() | 1;  // non-zero when traced
    in.payload.resize(rng() % 64);
    for (auto& b : in.payload) b = static_cast<std::uint8_t>(rng());

    const auto bytes = encode_frame(in);
    ASSERT_EQ(bytes.size(), kHeaderBytes +
                                (in.trace_id != 0 ? kTraceIdBytes : 0) +
                                in.payload.size());
    Frame out;
    const auto info = decode_header({bytes.data(), kHeaderBytes}, out);
    ASSERT_TRUE(info.has_value());
    decode_extension({bytes.data() + kHeaderBytes, info->extension_len}, out);
    out.payload.assign(bytes.begin() + static_cast<std::ptrdiff_t>(
                                           kHeaderBytes + info->extension_len),
                       bytes.end());
    EXPECT_EQ(out.op, in.op);
    EXPECT_EQ(out.status, in.status);
    EXPECT_EQ(out.tenant, in.tenant);
    EXPECT_EQ(out.arg, in.arg);
    EXPECT_EQ(out.trace_id, in.trace_id);
    EXPECT_EQ(out.payload, in.payload);
  }
}

}  // namespace
}  // namespace oi::server
