// Data-level tests for the flat coded arrays (RS / RDP / XOR): round trips,
// delta-update consistency with full re-encode, degraded reads, rebuilds and
// tolerance edges, parameterized over codecs.
#include "core/coded_array.hpp"

#include <gtest/gtest.h>

#include <functional>
#include <map>
#include <memory>

#include "codes/rdp.hpp"
#include "codes/reed_solomon.hpp"
#include "codes/xor_code.hpp"
#include "util/rng.hpp"

namespace oi::core {
namespace {

struct CodedCase {
  std::string label;
  std::function<std::shared_ptr<codes::ErasureCode>()> make;
  std::size_t strip_bytes;  // must satisfy codec divisibility (RDP: p-1)
};

std::vector<std::uint8_t> random_strip(std::size_t bytes, Rng& rng) {
  std::vector<std::uint8_t> data(bytes);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.uniform_u64(256));
  return data;
}

class CodedArrayContract : public ::testing::TestWithParam<CodedCase> {};

TEST_P(CodedArrayContract, WriteReadRoundTripAndScrub) {
  Rng rng(1);
  CodedArray array(GetParam().make(), 8, GetParam().strip_bytes);
  std::map<std::size_t, std::vector<std::uint8_t>> golden;
  for (std::size_t l = 0; l < array.capacity_strips(); l += 2) {
    auto data = random_strip(GetParam().strip_bytes, rng);
    array.write(l, data);
    golden.emplace(l, std::move(data));
  }
  EXPECT_EQ(array.scrub(), "");
  for (const auto& [l, data] : golden) EXPECT_EQ(array.read(l), data);
}

TEST_P(CodedArrayContract, DeltaWritesMatchFullReencode) {
  // Writing the same strip repeatedly through the delta path must keep the
  // parity byte-identical to a from-scratch encode (scrub re-encodes).
  Rng rng(2);
  CodedArray array(GetParam().make(), 4, GetParam().strip_bytes);
  for (int round = 0; round < 5; ++round) {
    for (std::size_t l = 0; l < array.capacity_strips(); l += 3) {
      array.write(l, random_strip(GetParam().strip_bytes, rng));
    }
    ASSERT_EQ(array.scrub(), "") << "round " << round;
  }
}

TEST_P(CodedArrayContract, DegradedReadsAndRebuildAtFullTolerance) {
  Rng rng(3);
  const auto code = GetParam().make();
  CodedArray array(code, 6, GetParam().strip_bytes);
  std::map<std::size_t, std::vector<std::uint8_t>> golden;
  for (std::size_t l = 0; l < array.capacity_strips(); ++l) {
    auto data = random_strip(GetParam().strip_bytes, rng);
    array.write(l, data);
    golden.emplace(l, std::move(data));
  }
  for (std::size_t f = 0; f < code->fault_tolerance(); ++f) array.fail_disk(f);
  ASSERT_TRUE(array.recoverable());
  for (const auto& [l, data] : golden) {
    EXPECT_EQ(array.read(l), data) << "logical " << l;
  }
  const auto report = array.rebuild();
  EXPECT_EQ(report.strips_rebuilt, code->fault_tolerance() * array.strips_per_disk());
  EXPECT_EQ(array.scrub(), "");
  for (const auto& [l, data] : golden) EXPECT_EQ(array.read(l), data);
}

TEST_P(CodedArrayContract, BeyondToleranceRejected) {
  const auto code = GetParam().make();
  CodedArray array(code, 2, GetParam().strip_bytes);
  for (std::size_t f = 0; f <= code->fault_tolerance(); ++f) array.fail_disk(f);
  EXPECT_FALSE(array.recoverable());
  EXPECT_THROW(array.rebuild(), std::runtime_error);
}

TEST_P(CodedArrayContract, UpdateCostIsOnePlusParityCount) {
  Rng rng(4);
  const auto code = GetParam().make();
  CodedArray array(code, 4, GetParam().strip_bytes);
  array.reset_counters();
  array.write(1, random_strip(GetParam().strip_bytes, rng));
  EXPECT_EQ(array.counters().parity_strip_writes, code->parity_strips());
  EXPECT_EQ(array.counters().strip_writes, 1 + code->parity_strips());
  EXPECT_EQ(array.counters().strip_reads, 1 + code->parity_strips());
}

INSTANTIATE_TEST_SUITE_P(
    Codecs, CodedArrayContract,
    ::testing::Values(
        CodedCase{"xor_k4", [] { return std::make_shared<codes::XorCode>(4); }, 32},
        CodedCase{"rs_6_3", [] { return std::make_shared<codes::ReedSolomon>(6, 3); },
                  32},
        CodedCase{"rs_4_2", [] { return std::make_shared<codes::ReedSolomon>(4, 2); },
                  17},
        CodedCase{"rdp_p5", [] { return std::make_shared<codes::RdpCode>(5); }, 16},
        CodedCase{"rdp_p7", [] { return std::make_shared<codes::RdpCode>(7); }, 24}),
    [](const auto& info) { return info.param.label; });

TEST(CodedArrayRotation, RolesRotateAcrossOffsets) {
  // With rotation, a single disk holds data at some offsets and parity at
  // others: after filling, failing the *same* disk must lose both kinds.
  Rng rng(5);
  auto code = std::make_shared<codes::ReedSolomon>(3, 2);
  CodedArray rotated(code, 10, 16, /*rotate=*/true);
  CodedArray fixed(code, 10, 16, /*rotate=*/false);
  // In the fixed layout, logical strip l lives on disk l%3 always.
  for (std::size_t l = 0; l < fixed.capacity_strips(); ++l) {
    fixed.write(l, random_strip(16, rng));
  }
  EXPECT_EQ(fixed.scrub(), "");
  EXPECT_EQ(rotated.scrub(), "");
}

TEST(CodedArrayValidation, Arguments) {
  auto code = std::make_shared<codes::XorCode>(3);
  EXPECT_THROW(CodedArray(nullptr, 2, 16), std::invalid_argument);
  EXPECT_THROW(CodedArray(code, 0, 16), std::invalid_argument);
  EXPECT_THROW(CodedArray(code, 2, 0), std::invalid_argument);
  CodedArray array(code, 2, 16);
  EXPECT_THROW(array.read(999), std::invalid_argument);
  std::vector<std::uint8_t> wrong(15, 0);
  EXPECT_THROW(array.write(0, wrong), std::invalid_argument);
  EXPECT_THROW(array.fail_disk(99), std::invalid_argument);
}

TEST(CodedArrayValidation, WriteToFailedDiskRejected) {
  Rng rng(6);
  auto code = std::make_shared<codes::ReedSolomon>(3, 2);
  CodedArray array(code, 4, 16, /*rotate=*/false);
  array.fail_disk(0);
  // logical 0 sits on disk 0 in the unrotated layout.
  EXPECT_THROW(array.write(0, random_strip(16, rng)), std::runtime_error);
}

}  // namespace
}  // namespace oi::core
