#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace oi {
namespace {

TEST(ThreadPool, ResolveThreadsMapsZeroToAllCores) {
  const std::size_t cores = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::thread::hardware_concurrency()));
  EXPECT_EQ(ThreadPool::resolve_threads(0), cores);
  EXPECT_EQ(ThreadPool::resolve_threads(1), 1u);
  EXPECT_EQ(ThreadPool::resolve_threads(3), 3u);
}

TEST(ThreadPool, ReportsRequestedThreadCount) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.threads(), 3u);
  ThreadPool defaulted;
  EXPECT_GE(defaulted.threads(), 1u);
}

TEST(ThreadPool, SubmitAndWaitRunsEveryTask) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, DestructorDrainsPendingTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
    }
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, hits.size(), [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ParallelForHandlesEmptyAndPartialRanges) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  pool.parallel_for(5, 5, [&](std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
  std::vector<std::atomic<int>> hits(10);
  pool.parallel_for(7, 10, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), i >= 7 ? 1 : 0) << "index " << i;
  }
}

TEST(ThreadPool, ParallelForWorksWithSingleWorker) {
  ThreadPool pool(1);
  std::vector<int> out(64, 0);
  pool.parallel_for(0, out.size(), [&](std::size_t i) { out[i] = static_cast<int>(i); });
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<int>(i));
  }
}

TEST(ThreadPool, WaitRethrowsFirstTaskException) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("task failed"); });
  EXPECT_THROW(pool.wait(), std::runtime_error);
  // The pool stays usable after an error has been consumed.
  std::atomic<int> counter{0};
  pool.submit([&counter] { counter.fetch_add(1); });
  pool.wait();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPool, ParallelForPropagatesExceptions) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(0, 100,
                                 [](std::size_t i) {
                                   if (i == 42) throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, ParallelForBalancesUnevenWork) {
  // Heavily skewed per-index cost: dynamic chunking must still cover all
  // indices and produce the exact sum.
  ThreadPool pool(4);
  std::vector<long> out(200, 0);
  pool.parallel_for(0, out.size(), [&](std::size_t i) {
    long acc = 0;
    const long spins = (i % 10 == 0) ? 20000 : 10;
    for (long s = 0; s < spins; ++s) acc += s % 7;
    out[i] = static_cast<long>(i) + (acc - acc);
  });
  const long sum = std::accumulate(out.begin(), out.end(), 0L);
  EXPECT_EQ(sum, 199L * 200L / 2L);
}

}  // namespace
}  // namespace oi
