// End-to-end data correctness: fill arrays with random bytes through the
// public write path, break disks, and verify degraded reads and rebuilds
// reproduce the exact bytes. This is the strongest check in the suite -- it
// exercises layout mapping, parity maintenance and recovery planning
// together at the data level.
#include "core/array.hpp"

#include <gtest/gtest.h>

#include <functional>
#include <map>
#include <memory>

#include "bibd/constructions.hpp"
#include "layout/oi_raid.hpp"
#include "layout/parity_declustering.hpp"
#include "layout/raid5.hpp"
#include "layout/raid50.hpp"
#include "layout/raid51.hpp"
#include "util/rng.hpp"

namespace oi::core {
namespace {

constexpr std::size_t kStripBytes = 64;

std::shared_ptr<const layout::Layout> oi_fano() {
  return std::make_shared<layout::OiRaidLayout>(
      layout::OiRaidParams{bibd::fano(), 3, 4});
}

std::vector<std::uint8_t> random_strip(Rng& rng) {
  std::vector<std::uint8_t> data(kStripBytes);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.uniform_u64(256));
  return data;
}

/// Writes random content to every logical strip; returns the golden copy.
std::map<std::size_t, std::vector<std::uint8_t>> fill_random(Array& array, Rng& rng,
                                                             std::size_t stride = 1) {
  std::map<std::size_t, std::vector<std::uint8_t>> golden;
  for (std::size_t l = 0; l < array.capacity_strips(); l += stride) {
    auto data = random_strip(rng);
    array.write(l, data);
    golden.emplace(l, std::move(data));
  }
  return golden;
}

struct ArrayCase {
  std::string label;
  std::function<std::shared_ptr<const layout::Layout>()> make;
  std::vector<std::size_t> survivable_failures;  // one pattern to exercise
};

class ArrayContract : public ::testing::TestWithParam<ArrayCase> {};

TEST_P(ArrayContract, FreshArrayIsConsistentAndZero) {
  Array array(GetParam().make(), kStripBytes);
  EXPECT_EQ(array.scrub(), "");
  const auto value = array.read(0);
  EXPECT_EQ(value, std::vector<std::uint8_t>(kStripBytes, 0));
}

TEST_P(ArrayContract, WritesKeepParityConsistent) {
  Rng rng(1);
  Array array(GetParam().make(), kStripBytes);
  fill_random(array, rng, 3);
  EXPECT_EQ(array.scrub(), "");
}

TEST_P(ArrayContract, ReadBackMatchesWrites) {
  Rng rng(2);
  Array array(GetParam().make(), kStripBytes);
  const auto golden = fill_random(array, rng, 2);
  for (const auto& [logical, data] : golden) {
    EXPECT_EQ(array.read(logical), data) << "logical " << logical;
  }
}

TEST_P(ArrayContract, DegradedReadsReproduceData) {
  Rng rng(3);
  Array array(GetParam().make(), kStripBytes);
  const auto golden = fill_random(array, rng);
  const auto failures = GetParam().survivable_failures;
  for (std::size_t disk : failures) array.fail_disk(disk);
  for (const auto& [logical, data] : golden) {
    EXPECT_EQ(array.read(logical), data) << "logical " << logical;
  }
}

TEST_P(ArrayContract, RebuildRestoresExactBytes) {
  Rng rng(4);
  Array array(GetParam().make(), kStripBytes);
  const auto golden = fill_random(array, rng);
  for (std::size_t disk : GetParam().survivable_failures) array.fail_disk(disk);
  ASSERT_TRUE(array.recoverable());
  const RebuildReport report = array.rebuild();
  EXPECT_EQ(report.strips_rebuilt,
            GetParam().survivable_failures.size() * array.layout().strips_per_disk());
  EXPECT_EQ(array.scrub(), "");
  for (const auto& [logical, data] : golden) {
    EXPECT_EQ(array.read(logical), data) << "logical " << logical;
  }
  EXPECT_TRUE(array.failed_disks().empty());
}

TEST_P(ArrayContract, WritesWhileDegradedSurviveRebuild) {
  Rng rng(5);
  Array array(GetParam().make(), kStripBytes);
  auto golden = fill_random(array, rng);
  const auto failures = GetParam().survivable_failures;
  for (std::size_t disk : failures) array.fail_disk(disk);

  // Overwrite some strips whose disks are still healthy.
  std::size_t updated = 0;
  for (std::size_t l = 0; l < array.capacity_strips() && updated < 20; l += 3) {
    const auto loc = array.layout().locate(l);
    if (array.is_failed(loc.disk)) continue;
    auto data = random_strip(rng);
    array.write(l, data);
    golden[l] = std::move(data);
    ++updated;
  }
  ASSERT_GT(updated, 0u);

  array.rebuild();
  EXPECT_EQ(array.scrub(), "");
  for (const auto& [logical, data] : golden) {
    EXPECT_EQ(array.read(logical), data) << "logical " << logical;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, ArrayContract,
    ::testing::Values(
        ArrayCase{"raid5",
                  [] {
                    return std::make_shared<layout::Raid5Layout>(5, 12);
                  },
                  {2}},
        ArrayCase{"raid50",
                  [] {
                    return std::make_shared<layout::Raid50Layout>(3, 3, 12);
                  },
                  {1, 5}},
        ArrayCase{"pd",
                  [] {
                    return std::make_shared<layout::ParityDeclusteredLayout>(
                        bibd::fano(), 2);
                  },
                  {4}},
        ArrayCase{"raid51",
                  [] {
                    return std::make_shared<layout::Raid51Layout>(4, 8);
                  },
                  {0, 1, 4}},
        ArrayCase{"oi_single", oi_fano, {7}},
        ArrayCase{"oi_group_pair", oi_fano, {3, 4}},
        ArrayCase{"oi_whole_group", oi_fano, {0, 1, 2}},
        ArrayCase{"oi_spread_triple", oi_fano, {1, 9, 17}},
        ArrayCase{"oi_two_plus_one", oi_fano, {6, 7, 12}}),
    [](const auto& info) { return info.param.label; });

TEST(ArraySemantics, UpdateComplexityIsThreeForOiRaid) {
  Rng rng(6);
  Array array(oi_fano(), kStripBytes);
  array.reset_counters();
  const IoCounters before = array.counters();
  array.write(5, random_strip(rng));
  const IoCounters delta = array.counters() - before;
  EXPECT_EQ(delta.parity_strip_writes, 3u);
  EXPECT_EQ(delta.strip_writes, 4u);   // data + 3 parity
  EXPECT_EQ(delta.strip_reads, 4u);    // RMW reads
}

TEST(ArraySemantics, UpdateComplexityIsOneForRaid5) {
  Rng rng(7);
  Array array(std::make_shared<layout::Raid5Layout>(6, 8), kStripBytes);
  array.write(3, random_strip(rng));
  EXPECT_EQ(array.counters().parity_strip_writes, 1u);
}

TEST(ArraySemantics, Raid51UpdateCostMatchesOiRaid) {
  Rng rng(10);
  Array array(std::make_shared<layout::Raid51Layout>(5, 8), kStripBytes);
  array.write(3, random_strip(rng));
  EXPECT_EQ(array.counters().parity_strip_writes, 3u);
  EXPECT_EQ(array.counters().strip_reads, 2u);   // old data + old parity only
  EXPECT_EQ(array.counters().strip_writes, 4u);  // data+parity on both sides
}

TEST(ArraySemantics, ReconstructOnWriteToFailedDisk) {
  Rng rng(8);
  Array array(oi_fano(), kStripBytes);
  auto golden = fill_random(array, rng);
  // Find a logical strip on disk 0, fail the disk, then overwrite it.
  std::size_t target = array.capacity_strips();
  for (std::size_t l = 0; l < array.capacity_strips(); ++l) {
    if (array.layout().locate(l).disk == 0) {
      target = l;
      break;
    }
  }
  ASSERT_LT(target, array.capacity_strips());
  array.fail_disk(0);
  const auto fresh = random_strip(rng);
  array.write(target, fresh);
  golden[target] = fresh;
  // The degraded read already serves the new value...
  EXPECT_EQ(array.read(target), fresh);
  // ...and the rebuild materializes it on the replacement disk.
  array.rebuild();
  EXPECT_EQ(array.scrub(), "");
  for (const auto& [logical, data] : golden) {
    EXPECT_EQ(array.read(logical), data) << "logical " << logical;
  }
}

TEST(ArraySemantics, DegradedWriteBeyondDecodingThrows) {
  Rng rng(13);
  Array array(std::make_shared<layout::Raid5Layout>(5, 6), kStripBytes);
  array.fail_disk(0);
  array.fail_disk(1);  // beyond RAID5's tolerance
  for (std::size_t l = 0; l < array.capacity_strips(); ++l) {
    if (array.layout().locate(l).disk == 0) {
      EXPECT_THROW(array.write(l, random_strip(rng)), std::runtime_error);
      return;
    }
  }
  FAIL() << "no logical strip found on disk 0";
}

TEST(ArraySemantics, UnrecoverablePatternsReportAndThrow) {
  Array array(std::make_shared<layout::Raid5Layout>(5, 6), kStripBytes);
  array.fail_disk(0);
  array.fail_disk(1);
  EXPECT_FALSE(array.recoverable());
  EXPECT_THROW(array.rebuild(), std::runtime_error);
}

TEST(ArraySemantics, DegradedReadBeyondToleranceThrows) {
  Array array(std::make_shared<layout::Raid5Layout>(5, 6), kStripBytes);
  array.fail_disk(0);
  array.fail_disk(1);
  bool threw = false;
  for (std::size_t l = 0; l < array.capacity_strips(); ++l) {
    try {
      array.read(l);
    } catch (const std::runtime_error&) {
      threw = true;
      break;
    }
  }
  EXPECT_TRUE(threw);
}

TEST(ArraySemantics, FailDiskIsIdempotentAndValidated) {
  Array array(oi_fano(), kStripBytes);
  array.fail_disk(4);
  array.fail_disk(4);
  EXPECT_EQ(array.failed_disks(), std::vector<std::size_t>{4});
  EXPECT_THROW(array.fail_disk(99), std::invalid_argument);
}

TEST(ArraySemantics, ScrubDetectsSilentCorruption) {
  Rng rng(9);
  auto layout_ptr = oi_fano();
  Array array(layout_ptr, kStripBytes);
  fill_random(array, rng, 5);
  ASSERT_EQ(array.scrub(), "");
  // Corrupt one byte behind the array's back via a degraded-path trick:
  // writing the same strip twice with different bytes must change parity, so
  // instead simulate corruption by failing+rebuilding... we cannot reach the
  // private store, so verify scrub catches an inconsistency made through the
  // public API: a write whose parity update was suppressed by a failure.
  array.fail_disk(20);            // some parity updates now get skipped
  const auto loc_ok = [&] {
    for (std::size_t l = 0; l < array.capacity_strips(); ++l) {
      const auto loc = layout_ptr->locate(l);
      if (loc.disk != 20) return l;
    }
    return std::size_t{0};
  }();
  array.write(loc_ok, random_strip(rng));
  // Bring the disk "back" without rebuilding by failing and rebuilding a
  // different healthy state is impossible through the API; instead assert
  // that scrub *skips* relations touching the failed disk and stays clean.
  EXPECT_EQ(array.scrub(), "");
  // After a proper rebuild everything is consistent again.
  array.rebuild();
  EXPECT_EQ(array.scrub(), "");
}

TEST(ArrayBytes, UnalignedRangesRoundTrip) {
  Rng rng(14);
  Array array(oi_fano(), kStripBytes);
  // A write that starts and ends mid-strip and spans several strips.
  const std::uint64_t offset = kStripBytes + 7;
  std::vector<std::uint8_t> blob(kStripBytes * 3 + 11);
  for (auto& b : blob) b = static_cast<std::uint8_t>(rng.uniform_u64(256));
  array.write_bytes(offset, blob);
  EXPECT_EQ(array.scrub(), "");
  EXPECT_EQ(array.read_bytes(offset, blob.size()), blob);
  // Untouched neighbours stayed zero.
  EXPECT_EQ(array.read_bytes(0, 7), std::vector<std::uint8_t>(7, 0));
  const std::uint64_t after = offset + blob.size();
  EXPECT_EQ(array.read_bytes(after, 5), std::vector<std::uint8_t>(5, 0));
}

TEST(ArrayBytes, SurvivesFailuresLikeStrips) {
  Rng rng(15);
  Array array(oi_fano(), kStripBytes);
  std::vector<std::uint8_t> blob(200);
  for (auto& b : blob) b = static_cast<std::uint8_t>(rng.uniform_u64(256));
  array.write_bytes(33, blob);
  array.fail_disk(0);
  array.fail_disk(1);
  EXPECT_EQ(array.read_bytes(33, blob.size()), blob);
  array.rebuild();
  EXPECT_EQ(array.read_bytes(33, blob.size()), blob);
}

TEST(ArrayBytes, RangeValidation) {
  Array array(oi_fano(), kStripBytes);
  EXPECT_THROW(array.read_bytes(array.capacity_bytes(), 1), std::invalid_argument);
  std::vector<std::uint8_t> one(1, 0);
  EXPECT_THROW(array.write_bytes(array.capacity_bytes(), one), std::invalid_argument);
  EXPECT_EQ(array.read_bytes(array.capacity_bytes() - 1, 1).size(), 1u);
}

TEST(ArrayScrubRepair, CorruptionDetectedAndRepairedEveryRole) {
  Rng rng(11);
  auto layout_ptr = oi_fano();
  Array array(layout_ptr, kStripBytes);
  const auto golden = fill_random(array, rng, 2);
  ASSERT_EQ(array.scrub(), "");

  // Hit one strip of each role.
  std::vector<layout::StripLoc> victims;
  bool have_data = false, have_parity = false, have_outer = false;
  for (std::size_t d = 0; d < layout_ptr->disks() && victims.size() < 3; ++d) {
    for (std::size_t o = 0; o < layout_ptr->strips_per_disk() && victims.size() < 3;
         ++o) {
      const auto role = layout_ptr->inspect({d, o}).role;
      if (role == layout::StripRole::kData && !have_data) {
        victims.push_back({d, o});
        have_data = true;
      } else if (role == layout::StripRole::kParity && !have_parity) {
        victims.push_back({d, o});
        have_parity = true;
      } else if (role == layout::StripRole::kOuterParity && !have_outer) {
        victims.push_back({d, o});
        have_outer = true;
      }
    }
  }
  ASSERT_EQ(victims.size(), 3u);

  for (const auto& victim : victims) {
    array.inject_corruption(victim);
    EXPECT_NE(array.scrub(), "") << "scrub missed corruption";
    EXPECT_TRUE(array.repair_strip(victim));
    EXPECT_EQ(array.scrub(), "") << "repair did not restore consistency";
  }
  for (const auto& [logical, data] : golden) {
    EXPECT_EQ(array.read(logical), data) << "logical " << logical;
  }
}

TEST(ArrayScrubRepair, RepairWorksUnderConcurrentDiskFailure) {
  Rng rng(12);
  auto layout_ptr = oi_fano();
  Array array(layout_ptr, kStripBytes);
  fill_random(array, rng, 4);
  array.fail_disk(9);
  // Corrupt a healthy data strip; repair must route around the failure.
  layout::StripLoc victim{0, 0};
  for (std::size_t o = 0; o < layout_ptr->strips_per_disk(); ++o) {
    if (layout_ptr->inspect({0, o}).role == layout::StripRole::kData) {
      victim = {0, o};
      break;
    }
  }
  array.inject_corruption(victim, 0x5A);
  EXPECT_TRUE(array.repair_strip(victim));
  array.rebuild();
  EXPECT_EQ(array.scrub(), "");
}

TEST(ArrayScrubRepair, Validation) {
  Array array(oi_fano(), kStripBytes);
  EXPECT_THROW(array.inject_corruption({999, 0}), std::invalid_argument);
  EXPECT_THROW(array.inject_corruption({0, 0}, 0), std::invalid_argument);
  array.fail_disk(0);
  EXPECT_THROW(array.repair_strip({0, 0}), std::invalid_argument);
}

TEST(ArrayValidation, ConstructorChecks) {
  EXPECT_THROW(Array(nullptr, 64), std::invalid_argument);
  EXPECT_THROW(Array(oi_fano(), 0), std::invalid_argument);
}

TEST(ArrayValidation, WriteSizeMustMatch) {
  Array array(oi_fano(), kStripBytes);
  std::vector<std::uint8_t> wrong(kStripBytes + 1, 0);
  EXPECT_THROW(array.write(0, wrong), std::invalid_argument);
  EXPECT_THROW(array.read(array.capacity_strips()), std::invalid_argument);
}

}  // namespace
}  // namespace oi::core
