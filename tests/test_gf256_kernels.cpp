// Kernel-equivalence battery: every available GF(256) kernel variant must
// produce byte-identical output to the scalar reference -- across all 256
// coefficients, odd lengths, misaligned sub-spans, aliased buffers, the fused
// primitives, and full codec round-trips. GF arithmetic is exact, so any
// divergence is a kernel bug, not tolerance noise.
#include "codes/kernels.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <vector>

#include "codes/gf256.hpp"
#include "codes/rdp.hpp"
#include "codes/reed_solomon.hpp"
#include "codes/xor_code.hpp"
#include "util/rng.hpp"

namespace oi::gf {
namespace {

class ScopedKernel {
 public:
  explicit ScopedKernel(Kernel k) : prev_(active_kernel()) { set_kernel(k); }
  ~ScopedKernel() { set_kernel(prev_); }
  ScopedKernel(const ScopedKernel&) = delete;
  ScopedKernel& operator=(const ScopedKernel&) = delete;

 private:
  Kernel prev_;
};

// The exact lengths the issue calls out: empty, sub-word, one-off-the-vector
// widths on both sides, and a page-plus-tail.
const std::vector<std::size_t> kLengths = {0, 1, 15, 16, 17, 63, 64, 65, 4096 + 7};

std::vector<Byte> random_bytes(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Byte> out(n);
  for (auto& b : out) b = static_cast<Byte>(rng.uniform_u64(256));
  return out;
}

// Scalar-computed expectation for dst ^= c * src.
std::vector<Byte> ref_mul_add(std::vector<Byte> dst, const std::vector<Byte>& src,
                              Byte c) {
  for (std::size_t i = 0; i < dst.size(); ++i) dst[i] ^= mul(c, src[i]);
  return dst;
}

TEST(Gf256Kernels, ScalarAlwaysAvailableAndFirst) {
  const auto kernels = available_kernels();
  ASSERT_FALSE(kernels.empty());
  EXPECT_EQ(kernels.front(), Kernel::kScalar);
  EXPECT_TRUE(kernel_available(Kernel::kScalar));
  EXPECT_TRUE(kernel_available(Kernel::kWord64));
}

TEST(Gf256Kernels, NamesRoundTrip) {
  for (const Kernel k : {Kernel::kScalar, Kernel::kWord64, Kernel::kPshufb}) {
    const auto parsed = parse_kernel(kernel_name(k));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, k);
  }
  EXPECT_FALSE(parse_kernel("avx9000").has_value());
  EXPECT_FALSE(parse_kernel("auto").has_value());  // resolved by set_kernel_by_name
}

TEST(Gf256Kernels, SetKernelByNameRejectsUnknown) {
  EXPECT_THROW(set_kernel_by_name("not-a-kernel"), std::invalid_argument);
}

TEST(Gf256Kernels, EnvOverrideRespectedWhenAvailable) {
  // The CI matrix runs this binary under OI_GF_KERNEL=<variant>; when the
  // variant exists on this CPU the startup selection must honor it (an
  // unavailable variant falls back, which "auto" re-derives).
  const char* env = std::getenv("OI_GF_KERNEL");
  if (env == nullptr || *env == '\0' || std::string_view(env) == "auto") {
    GTEST_SKIP() << "OI_GF_KERNEL not forced";
  }
  const auto requested = parse_kernel(env);
  if (!requested.has_value()) {
    GTEST_SKIP() << "unknown OI_GF_KERNEL=" << env << " (library warns and falls back)";
  }
  if (!kernel_available(*requested)) {
    GTEST_SKIP() << "kernel '" << env << "' unavailable on this CPU";
  }
  set_kernel_by_name("auto");  // re-run startup selection: env wins
  EXPECT_EQ(active_kernel(), *requested);
}

TEST(Gf256Kernels, MulTableMatchesFieldMultiplication) {
  for (unsigned c = 0; c < 256; ++c) {
    const MulTable& t = mul_table(static_cast<Byte>(c));
    EXPECT_EQ(t.coeff, c);
    for (unsigned x = 0; x < 16; ++x) {
      EXPECT_EQ(t.lo[x], mul(static_cast<Byte>(c), static_cast<Byte>(x)));
      EXPECT_EQ(t.hi[x], mul(static_cast<Byte>(c), static_cast<Byte>(x << 4)));
    }
    // Split-nibble recombination covers every byte value.
    for (unsigned s = 0; s < 256; ++s) {
      EXPECT_EQ(static_cast<Byte>(t.lo[s & 0x0f] ^ t.hi[s >> 4]),
                mul(static_cast<Byte>(c), static_cast<Byte>(s)));
    }
  }
}

TEST(Gf256Kernels, AllCoefficientsAllLengthsMatchScalar) {
  for (const Kernel kernel : available_kernels()) {
    ScopedKernel scoped(kernel);
    std::uint64_t seed = 100;
    for (unsigned c = 0; c < 256; ++c) {
      const Byte coeff = static_cast<Byte>(c);
      for (const std::size_t n : kLengths) {
        const auto src = random_bytes(n, ++seed);
        const auto dst0 = random_bytes(n, ++seed);
        const auto want_add = ref_mul_add(dst0, src, coeff);

        auto got = dst0;
        mul_add(got, src, coeff);
        ASSERT_EQ(got, want_add)
            << kernel_name(kernel) << " mul_add c=" << c << " n=" << n;

        got = dst0;
        mul_assign(got, src, coeff);
        std::vector<Byte> want_assign(n);
        for (std::size_t i = 0; i < n; ++i) want_assign[i] = mul(coeff, src[i]);
        ASSERT_EQ(got, want_assign)
            << kernel_name(kernel) << " mul_assign c=" << c << " n=" << n;
      }
    }
  }
}

TEST(Gf256Kernels, MisalignedSubSpansMatchScalar) {
  // Offsets 1..3 into an allocation defeat any accidental reliance on
  // vector-width alignment; kernels must use unaligned loads throughout.
  for (const Kernel kernel : available_kernels()) {
    ScopedKernel scoped(kernel);
    std::uint64_t seed = 9000;
    for (std::size_t offset = 1; offset <= 3; ++offset) {
      for (const std::size_t n : kLengths) {
        auto dst_buf = random_bytes(n + 8, ++seed);
        const auto src_buf = random_bytes(n + 8, ++seed);
        const std::span<Byte> dst(dst_buf.data() + offset, n);
        const std::span<const Byte> src(src_buf.data() + offset, n);
        std::vector<Byte> want(dst.begin(), dst.end());
        for (std::size_t i = 0; i < n; ++i) want[i] ^= mul(0x53, src[i]);

        mul_add(dst, src, 0x53);
        ASSERT_TRUE(std::equal(want.begin(), want.end(), dst.begin()))
            << kernel_name(kernel) << " offset=" << offset << " n=" << n;

        // Bytes outside the span must be untouched.
        auto fresh = random_bytes(n + 8, seed - 1);  // same seed as dst_buf
        for (std::size_t i = 0; i < offset; ++i) ASSERT_EQ(dst_buf[i], fresh[i]);
        for (std::size_t i = offset + n; i < dst_buf.size(); ++i) {
          ASSERT_EQ(dst_buf[i], fresh[i]);
        }
      }
    }
  }
}

TEST(Gf256Kernels, AliasedDstEqualsSrc) {
  for (const Kernel kernel : available_kernels()) {
    ScopedKernel scoped(kernel);
    for (const std::size_t n : kLengths) {
      // xor_acc with dst == src zeroes the buffer.
      auto buf = random_bytes(n, 42 + n);
      xor_acc(buf, buf);
      EXPECT_TRUE(std::all_of(buf.begin(), buf.end(), [](Byte b) { return b == 0; }))
          << kernel_name(kernel) << " n=" << n;

      // mul_assign with dst == src scales in place.
      auto buf2 = random_bytes(n, 43 + n);
      const auto orig = buf2;
      mul_assign(buf2, buf2, 0xA7);
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(buf2[i], mul(0xA7, orig[i])) << kernel_name(kernel) << " n=" << n;
      }
    }
  }
}

TEST(Gf256Kernels, FusedDeltaPrimitivesMatchScalar) {
  for (const Kernel kernel : available_kernels()) {
    ScopedKernel scoped(kernel);
    std::uint64_t seed = 5000;
    for (const std::size_t n : kLengths) {
      const auto a = random_bytes(n, ++seed);
      const auto b = random_bytes(n, ++seed);
      const auto dst0 = random_bytes(n, ++seed);

      auto got = dst0;
      xor_delta(got, a, b);
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(got[i], static_cast<Byte>(dst0[i] ^ a[i] ^ b[i]))
            << kernel_name(kernel) << " n=" << n;
      }

      for (const Byte coeff : {Byte{0}, Byte{1}, Byte{0x1d}, Byte{0xff}}) {
        got = dst0;
        mul_add_delta(got, a, b, coeff);
        for (std::size_t i = 0; i < n; ++i) {
          ASSERT_EQ(got[i], static_cast<Byte>(
                                dst0[i] ^ mul(coeff, static_cast<Byte>(a[i] ^ b[i]))))
              << kernel_name(kernel) << " c=" << unsigned(coeff) << " n=" << n;
        }
      }
    }
  }
}

TEST(Gf256Kernels, MulAddMultiMatchesSequential) {
  for (const Kernel kernel : available_kernels()) {
    ScopedKernel scoped(kernel);
    std::uint64_t seed = 7000;
    for (const std::size_t n : {std::size_t{0}, std::size_t{65}, std::size_t{4096 + 7},
                                std::size_t{3 * 8192 + 5}}) {
      std::vector<std::vector<Byte>> sources;
      // Coefficients cover the special-cased values (0, 1) and generic ones.
      const std::vector<Byte> coeffs = {0x00, 0x01, 0x02, 0xfe, 0x8e};
      for (std::size_t s = 0; s < coeffs.size(); ++s) {
        sources.push_back(random_bytes(n, ++seed));
      }
      const auto dst0 = random_bytes(n, ++seed);

      auto want = dst0;
      for (std::size_t s = 0; s < coeffs.size(); ++s) {
        mul_add(want, sources[s], coeffs[s]);
      }

      auto got = dst0;
      std::vector<std::span<const Byte>> views(sources.begin(), sources.end());
      mul_add_multi(got, views, coeffs);
      ASSERT_EQ(got, want) << kernel_name(kernel) << " n=" << n;
    }
  }
}

// Seeded randomized encode/decode round-trips under each forced variant, for
// each codec family. Outputs must also be identical across variants.
template <typename MakeCode>
void round_trip_all_kernels(MakeCode make_code, std::size_t strip_bytes,
                            std::uint64_t seed) {
  std::vector<std::vector<codes::Strip>> encoded_by_kernel;
  for (const Kernel kernel : available_kernels()) {
    ScopedKernel scoped(kernel);
    const auto code = make_code();
    const std::size_t k = code->data_strips();
    const std::size_t m = code->parity_strips();

    Rng rng(seed);
    std::vector<codes::Strip> data(k);
    for (auto& s : data) {
      s.resize(strip_bytes);
      for (auto& b : s) b = static_cast<Byte>(rng.uniform_u64(256));
    }
    std::vector<codes::Strip> parity(m);
    code->encode(data, parity);

    std::vector<codes::Strip> strips = data;
    strips.insert(strips.end(), parity.begin(), parity.end());
    encoded_by_kernel.push_back(strips);

    // Every erasure count up to the tolerance, randomized positions.
    for (std::size_t erase = 1; erase <= code->fault_tolerance(); ++erase) {
      auto work = strips;
      std::vector<bool> present(k + m, true);
      std::size_t erased = 0;
      while (erased < erase) {
        const auto idx = static_cast<std::size_t>(rng.uniform_u64(k + m));
        if (!present[idx]) continue;
        present[idx] = false;
        work[idx].assign(strip_bytes, 0xDD);
        ++erased;
      }
      ASSERT_TRUE(code->decode(work, present))
          << code->name() << " kernel=" << kernel_name(kernel) << " erase=" << erase;
      ASSERT_EQ(work, strips)
          << code->name() << " kernel=" << kernel_name(kernel) << " erase=" << erase;
    }

    // update_parity consistency: a small write must equal a full re-encode.
    codes::Strip new_data = data[0];
    for (auto& b : new_data) b ^= static_cast<Byte>(1 + rng.uniform_u64(255));
    std::vector<codes::Strip> updated_parity = parity;
    for (std::size_t p = 0; p < m; ++p) {
      code->update_parity(updated_parity[p], p, 0, data[0], new_data);
    }
    auto changed = data;
    changed[0] = new_data;
    std::vector<codes::Strip> full_parity(m);
    code->encode(changed, full_parity);
    ASSERT_EQ(updated_parity, full_parity)
        << code->name() << " kernel=" << kernel_name(kernel);
  }
  for (std::size_t i = 1; i < encoded_by_kernel.size(); ++i) {
    ASSERT_EQ(encoded_by_kernel[i], encoded_by_kernel[0])
        << "kernel " << kernel_name(available_kernels()[i])
        << " encodes differently from scalar";
  }
}

TEST(Gf256Kernels, ReedSolomonRoundTripEachKernel) {
  round_trip_all_kernels(
      [] { return std::make_unique<codes::ReedSolomon>(6, 3); }, 1031, 11);
}

TEST(Gf256Kernels, RdpRoundTripEachKernel) {
  // p=5: strip size must be divisible by p-1.
  round_trip_all_kernels(
      [] { return std::make_unique<codes::RdpCode>(5); }, 4 * 257, 12);
}

TEST(Gf256Kernels, XorRoundTripEachKernel) {
  round_trip_all_kernels(
      [] { return std::make_unique<codes::XorCode>(5); }, 1031, 13);
}

TEST(Gf256Kernels, ReedSolomonSingleDataErasureDecodesOnlyThatStrip) {
  // The erased-only decode restriction: with one data strip lost, decode must
  // restore exactly that strip and leave survivors untouched (same storage).
  codes::ReedSolomon code(6, 3);
  Rng rng(21);
  std::vector<codes::Strip> data(6);
  for (auto& s : data) {
    s.resize(512);
    for (auto& b : s) b = static_cast<Byte>(rng.uniform_u64(256));
  }
  std::vector<codes::Strip> parity(3);
  code.encode(data, parity);
  std::vector<codes::Strip> strips = data;
  strips.insert(strips.end(), parity.begin(), parity.end());

  auto work = strips;
  std::vector<bool> present(9, true);
  present[3] = false;
  work[3].clear();
  std::vector<const Byte*> survivor_storage;
  for (std::size_t i = 0; i < work.size(); ++i) {
    if (i != 3) survivor_storage.push_back(work[i].data());
  }
  ASSERT_TRUE(code.decode(work, present));
  EXPECT_EQ(work, strips);
  // Survivor vectors were not reallocated or rewritten.
  std::size_t j = 0;
  for (std::size_t i = 0; i < work.size(); ++i) {
    if (i != 3) {
      EXPECT_EQ(work[i].data(), survivor_storage[j++]) << "strip " << i;
    }
  }
}

}  // namespace
}  // namespace oi::gf
