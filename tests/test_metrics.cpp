#include "util/metrics.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "json_lint.hpp"

namespace oi::metrics {
namespace {

/// Every test runs against the process-wide registry; reset values and the
/// enable switch around each case so ordering does not matter. Registrations
/// themselves persist for the process (by design), so tests use unique names.
class MetricsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Registry::instance().reset_values();
    set_enabled(true);
  }
  void TearDown() override {
    set_enabled(false);
    Registry::instance().reset_values();
  }
};

TEST_F(MetricsTest, CounterMonotonicAndIdentityStable) {
  Counter& c = Registry::instance().counter("test.metrics.counter_a");
  EXPECT_EQ(c.value(), 0u);
  c.increment();
  c.add(4);
  EXPECT_EQ(c.value(), 5u);
  // Same name resolves to the same object; the handle never moves.
  EXPECT_EQ(&Registry::instance().counter("test.metrics.counter_a"), &c);

  std::uint64_t last = 0;
  for (int i = 0; i < 100; ++i) {
    c.increment();
    const std::uint64_t now = c.value();
    EXPECT_GT(now, last);  // counters only go up
    last = now;
  }
}

TEST_F(MetricsTest, DisabledUpdatesAreDropped) {
  Counter& c = Registry::instance().counter("test.metrics.counter_off");
  Gauge& g = Registry::instance().gauge("test.metrics.gauge_off");
  FixedHistogram& h =
      Registry::instance().histogram("test.metrics.hist_off", 0.0, 10.0, 5);
  set_enabled(false);
  c.add(7);
  g.set(3.5);
  h.record(2.0);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  EXPECT_EQ(h.total(), 0u);
  set_enabled(true);
  c.add(7);
  EXPECT_EQ(c.value(), 7u);
}

TEST_F(MetricsTest, HistogramBucketsAndEdgeClamping) {
  FixedHistogram& h =
      Registry::instance().histogram("test.metrics.hist_edges", 0.0, 10.0, 5);
  h.record(0.0);    // bucket 0
  h.record(3.0);    // bucket 1
  h.record(9.999);  // bucket 4
  h.record(-5.0);   // below range -> bucket 0
  h.record(50.0);   // above range -> bucket 4
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(4), 2u);
  EXPECT_EQ(h.buckets(), 5u);
  EXPECT_DOUBLE_EQ(h.low(), 0.0);
  EXPECT_DOUBLE_EQ(h.bucket_width(), 2.0);
}

TEST_F(MetricsTest, NameValidation) {
  Registry& reg = Registry::instance();
  EXPECT_NO_THROW(reg.counter("sim.disk.busy_us"));
  EXPECT_THROW(reg.counter(""), std::invalid_argument);
  EXPECT_THROW(reg.counter("Sim.Disk.Reads"), std::invalid_argument);  // uppercase
  EXPECT_THROW(reg.counter("sim disk reads"), std::invalid_argument);  // space
  EXPECT_THROW(reg.counter(".leading.dot"), std::invalid_argument);
  EXPECT_THROW(reg.counter("trailing.dot."), std::invalid_argument);
}

TEST_F(MetricsTest, KindConflictsAreErrors) {
  Registry& reg = Registry::instance();
  reg.counter("test.metrics.kind_taken");
  EXPECT_THROW(reg.gauge("test.metrics.kind_taken"), std::invalid_argument);
  EXPECT_THROW(reg.histogram("test.metrics.kind_taken", 0.0, 1.0, 2),
               std::invalid_argument);
  // A histogram re-registered with different bounds is a wiring bug.
  reg.histogram("test.metrics.hist_fixed", 0.0, 10.0, 5);
  EXPECT_NO_THROW(reg.histogram("test.metrics.hist_fixed", 0.0, 10.0, 5));
  EXPECT_THROW(reg.histogram("test.metrics.hist_fixed", 0.0, 20.0, 5),
               std::invalid_argument);
}

TEST_F(MetricsTest, JsonSnapshotIsWellFormedAndComplete) {
  Registry& reg = Registry::instance();
  reg.counter("test.metrics.json_counter").add(3);
  reg.gauge("test.metrics.json_gauge").set(1.25);
  reg.histogram("test.metrics.json_hist", 0.0, 4.0, 4).record(1.0);
  const std::string json = reg.to_json();
  EXPECT_TRUE(oi::testing::JsonLint::well_formed(json)) << json;
  EXPECT_NE(json.find("\"schema_version\""), std::string::npos);
  EXPECT_NE(json.find("\"test.metrics.json_counter\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"test.metrics.json_gauge\""), std::string::npos);
  EXPECT_NE(json.find("\"test.metrics.json_hist\""), std::string::npos);
}

TEST_F(MetricsTest, ResetValuesKeepsRegistrations) {
  Registry& reg = Registry::instance();
  Counter& c = reg.counter("test.metrics.reset_me");
  c.add(9);
  reg.reset_values();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(&reg.counter("test.metrics.reset_me"), &c);
}

TEST_F(MetricsTest, ConcurrentUpdatesDoNotLoseCounts) {
  Counter& c = Registry::instance().counter("test.metrics.concurrent");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10'000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.increment();
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

}  // namespace
}  // namespace oi::metrics
