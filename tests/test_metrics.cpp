#include "util/metrics.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "json_lint.hpp"

namespace oi::metrics {
namespace {

/// Every test runs against the process-wide registry; reset values and the
/// enable switch around each case so ordering does not matter. Registrations
/// themselves persist for the process (by design), so tests use unique names.
class MetricsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Registry::instance().reset_values();
    set_enabled(true);
  }
  void TearDown() override {
    set_enabled(false);
    Registry::instance().reset_values();
  }
};

TEST_F(MetricsTest, CounterMonotonicAndIdentityStable) {
  Counter& c = Registry::instance().counter("test.metrics.counter_a");
  EXPECT_EQ(c.value(), 0u);
  c.increment();
  c.add(4);
  EXPECT_EQ(c.value(), 5u);
  // Same name resolves to the same object; the handle never moves.
  EXPECT_EQ(&Registry::instance().counter("test.metrics.counter_a"), &c);

  std::uint64_t last = 0;
  for (int i = 0; i < 100; ++i) {
    c.increment();
    const std::uint64_t now = c.value();
    EXPECT_GT(now, last);  // counters only go up
    last = now;
  }
}

TEST_F(MetricsTest, DisabledUpdatesAreDropped) {
  Counter& c = Registry::instance().counter("test.metrics.counter_off");
  Gauge& g = Registry::instance().gauge("test.metrics.gauge_off");
  FixedHistogram& h =
      Registry::instance().histogram("test.metrics.hist_off", 0.0, 10.0, 5);
  set_enabled(false);
  c.add(7);
  g.set(3.5);
  h.record(2.0);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  EXPECT_EQ(h.total(), 0u);
  set_enabled(true);
  c.add(7);
  EXPECT_EQ(c.value(), 7u);
}

TEST_F(MetricsTest, HistogramBucketsAndEdgeClamping) {
  FixedHistogram& h =
      Registry::instance().histogram("test.metrics.hist_edges", 0.0, 10.0, 5);
  h.record(0.0);    // bucket 0
  h.record(3.0);    // bucket 1
  h.record(9.999);  // bucket 4
  h.record(-5.0);   // below range -> bucket 0
  h.record(50.0);   // above range -> bucket 4
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(4), 2u);
  EXPECT_EQ(h.buckets(), 5u);
  EXPECT_DOUBLE_EQ(h.low(), 0.0);
  EXPECT_DOUBLE_EQ(h.bucket_width(), 2.0);
}

TEST_F(MetricsTest, NameValidation) {
  Registry& reg = Registry::instance();
  EXPECT_NO_THROW(reg.counter("sim.disk.busy_us"));
  EXPECT_THROW(reg.counter(""), std::invalid_argument);
  EXPECT_THROW(reg.counter("Sim.Disk.Reads"), std::invalid_argument);  // uppercase
  EXPECT_THROW(reg.counter("sim disk reads"), std::invalid_argument);  // space
  EXPECT_THROW(reg.counter(".leading.dot"), std::invalid_argument);
  EXPECT_THROW(reg.counter("trailing.dot."), std::invalid_argument);
}

TEST_F(MetricsTest, KindConflictsAreErrors) {
  Registry& reg = Registry::instance();
  reg.counter("test.metrics.kind_taken");
  EXPECT_THROW(reg.gauge("test.metrics.kind_taken"), std::invalid_argument);
  EXPECT_THROW(reg.histogram("test.metrics.kind_taken", 0.0, 1.0, 2),
               std::invalid_argument);
  // A histogram re-registered with different bounds is a wiring bug.
  reg.histogram("test.metrics.hist_fixed", 0.0, 10.0, 5);
  EXPECT_NO_THROW(reg.histogram("test.metrics.hist_fixed", 0.0, 10.0, 5));
  EXPECT_THROW(reg.histogram("test.metrics.hist_fixed", 0.0, 20.0, 5),
               std::invalid_argument);
}

TEST_F(MetricsTest, JsonSnapshotIsWellFormedAndComplete) {
  Registry& reg = Registry::instance();
  reg.counter("test.metrics.json_counter").add(3);
  reg.gauge("test.metrics.json_gauge").set(1.25);
  reg.histogram("test.metrics.json_hist", 0.0, 4.0, 4).record(1.0);
  const std::string json = reg.to_json();
  EXPECT_TRUE(oi::testing::JsonLint::well_formed(json)) << json;
  EXPECT_NE(json.find("\"schema_version\""), std::string::npos);
  EXPECT_NE(json.find("\"test.metrics.json_counter\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"test.metrics.json_gauge\""), std::string::npos);
  EXPECT_NE(json.find("\"test.metrics.json_hist\""), std::string::npos);
}

TEST_F(MetricsTest, ResetValuesKeepsRegistrations) {
  Registry& reg = Registry::instance();
  Counter& c = reg.counter("test.metrics.reset_me");
  c.add(9);
  reg.reset_values();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(&reg.counter("test.metrics.reset_me"), &c);
}

TEST_F(MetricsTest, GaugeAddIsAnUpDownDelta) {
  Gauge& g = Registry::instance().gauge("test.metrics.gauge_updown");
  g.add(1.0);
  g.add(1.0);
  g.add(-1.0);
  EXPECT_DOUBLE_EQ(g.value(), 1.0);
  g.set(10.0);  // set() still overwrites
  g.add(0.5);
  EXPECT_DOUBLE_EQ(g.value(), 10.5);
}

TEST_F(MetricsTest, ConcurrentGaugeAddsBalanceToZero) {
  Gauge& g = Registry::instance().gauge("test.metrics.gauge_concurrent");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5'000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&g] {
      for (int i = 0; i < kPerThread; ++i) {
        g.add(1.0);
        g.add(-1.0);
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);  // CAS loop: no lost updates
}

TEST_F(MetricsTest, HistogramKeepsARunningSum) {
  FixedHistogram& h =
      Registry::instance().histogram("test.metrics.hist_sum", 0.0, 10.0, 5);
  h.record(1.5);
  h.record(2.5);
  h.record(50.0);  // clamped into the last bucket but summed exactly
  EXPECT_DOUBLE_EQ(h.sum(), 54.0);
  Registry::instance().reset_values();
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
}

TEST_F(MetricsTest, JsonSchemaV3CarriesHistogramSums) {
  Registry& reg = Registry::instance();
  reg.histogram("test.metrics.json_sum_hist", 0.0, 4.0, 4).record(1.5);
  const std::string json = reg.to_json();
  EXPECT_NE(json.find("\"schema_version\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"sum\": 1.5"), std::string::npos);
}

TEST_F(MetricsTest, SnapshotIsADecoupledPointInTimeCopy) {
  Registry& reg = Registry::instance();
  Counter& c = reg.counter("test.metrics.snap_counter");
  Gauge& g = reg.gauge("test.metrics.snap_gauge");
  FixedHistogram& h = reg.histogram("test.metrics.snap_hist", 0.0, 10.0, 2);
  c.add(5);
  g.set(-2.5);
  h.record(1.0);
  h.record(8.0);

  const Snapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counters.at("test.metrics.snap_counter"), 5u);
  EXPECT_DOUBLE_EQ(snap.gauges.at("test.metrics.snap_gauge"), -2.5);
  const Snapshot::Histogram& hs = snap.histograms.at("test.metrics.snap_hist");
  EXPECT_EQ(hs.total, 2u);
  EXPECT_DOUBLE_EQ(hs.sum, 9.0);
  ASSERT_EQ(hs.counts.size(), 2u);
  EXPECT_EQ(hs.counts[0], 1u);
  EXPECT_EQ(hs.counts[1], 1u);
  EXPECT_DOUBLE_EQ(hs.bucket_width, 5.0);

  // Later updates do not leak into an already-taken snapshot.
  c.add(100);
  EXPECT_EQ(snap.counters.at("test.metrics.snap_counter"), 5u);
}

TEST_F(MetricsTest, PrometheusExpositionCoversEveryMetricKind) {
  Registry& reg = Registry::instance();
  reg.counter("test.metrics.prom_counter").add(3);
  reg.gauge("test.metrics.prom_gauge").set(1.25);
  FixedHistogram& h = reg.histogram("test.metrics.prom_hist", 0.0, 2.0, 2);
  h.record(0.5);
  h.record(1.5);
  const std::string text = reg.to_prometheus();
  EXPECT_NE(text.find("# TYPE oi_test_metrics_prom_counter_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("oi_test_metrics_prom_counter_total 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE oi_test_metrics_prom_gauge gauge"),
            std::string::npos);
  EXPECT_NE(text.find("oi_test_metrics_prom_gauge 1.25"), std::string::npos);
  EXPECT_NE(text.find("# TYPE oi_test_metrics_prom_hist histogram"),
            std::string::npos);
  // Cumulative buckets: le="1" holds 1; the top bucket is a clamp edge
  // (values above the range land in it), so it is labelled +Inf rather than
  // its finite bound, and _count matches it.
  EXPECT_NE(text.find("oi_test_metrics_prom_hist_bucket{le=\"1\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("oi_test_metrics_prom_hist_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("oi_test_metrics_prom_hist_sum 2"), std::string::npos);
  EXPECT_NE(text.find("oi_test_metrics_prom_hist_count 2"), std::string::npos);
}

TEST_F(MetricsTest, ConcurrentUpdatesDoNotLoseCounts) {
  Counter& c = Registry::instance().counter("test.metrics.concurrent");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10'000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.increment();
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

}  // namespace
}  // namespace oi::metrics
