// The lock-domain derivation (layout/concurrency_map.hpp) is what makes the
// striped data plane *correct*, not just fast: every claim the server's
// locking discipline relies on -- domains partition the strips, relations
// never cross domains, write plans and recovery steps stay inside one domain
// -- is checked here over the same layout family the arrays run.
#include "layout/concurrency_map.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <set>

#include "bibd/constructions.hpp"
#include "core/striped_lock.hpp"
#include "layout/oi_raid.hpp"
#include "layout/parity_declustering.hpp"
#include "layout/raid5.hpp"
#include "layout/raid50.hpp"
#include "layout/stripe_map.hpp"

namespace oi::layout {
namespace {

std::shared_ptr<const Layout> oi_fano(std::size_t m = 3, std::size_t h = 6) {
  return std::make_shared<OiRaidLayout>(OiRaidParams{bibd::fano(), m, h});
}

TEST(ConcurrencyMap, DomainsPartitionTheStrips) {
  for (const auto& layout :
       {oi_fano(), std::shared_ptr<const Layout>(
                       std::make_shared<Raid5Layout>(5, 8))}) {
    const ConcurrencyMap& map = layout->concurrency_map();
    ASSERT_EQ(map.total_strips(), layout->total_strips());
    ASSERT_GE(map.domains(), 1u);
    // Every strip in exactly one domain, and the CSR view agrees with
    // domain_of.
    std::vector<char> seen(map.total_strips(), 0);
    std::size_t covered = 0;
    for (std::uint32_t d = 0; d < map.domains(); ++d) {
      for (const std::uint32_t strip : map.domain_strips(d)) {
        EXPECT_EQ(map.domain_of(strip), d);
        EXPECT_EQ(seen[strip], 0) << "strip " << strip << " in two domains";
        seen[strip] = 1;
        ++covered;
      }
      EXPECT_EQ(map.domain_strips(d).size(), map.domain_size(d));
    }
    EXPECT_EQ(covered, map.total_strips());
  }
}

TEST(ConcurrencyMap, RelationsNeverCrossDomains) {
  const auto layout = oi_fano();
  const StripeMap& stripes = layout->stripe_map();
  const ConcurrencyMap& map = layout->concurrency_map();
  for (std::uint32_t rel = 0; rel < stripes.relations(); ++rel) {
    const auto members = stripes.relation_members(rel);
    const std::uint32_t domain = map.domain_of(members.front());
    for (const std::uint32_t member : members) {
      EXPECT_EQ(map.domain_of(member), domain);
    }
  }
}

TEST(ConcurrencyMap, OiRaidSplitsIntoManyDomains) {
  // The whole point of striping: OI-RAID's relation graph decomposes into
  // many independent stripe rows, so the plane is actually concurrent.
  const auto layout = oi_fano();
  const ConcurrencyMap& map = layout->concurrency_map();
  EXPECT_GT(map.domains(), 4u);
  EXPECT_LT(map.largest_domain(), map.total_strips());
  // Deterministic dense ids, ordered by smallest strip id: domain 0 owns
  // strip 0.
  EXPECT_EQ(map.domain_of(0), 0u);
}

TEST(ConcurrencyMap, WritePlansStayInsideOneDomain) {
  for (const auto& layout :
       {oi_fano(), oi_fano(3, 4),
        std::shared_ptr<const Layout>(std::make_shared<Raid50Layout>(4, 3, 6)),
        std::shared_ptr<const Layout>(
            std::make_shared<ParityDeclusteredLayout>(bibd::fano(), 2))}) {
    const StripeMap& stripes = layout->stripe_map();
    const ConcurrencyMap& map = layout->concurrency_map();
    for (std::size_t logical = 0; logical < layout->data_strips(); ++logical) {
      const WritePlan plan = layout->small_write_plan(logical);
      const std::uint32_t domain =
          map.domain_of(stripes.strip_id(plan.writes.front()));
      for (const StripLoc& loc : plan.writes) {
        EXPECT_EQ(map.domain_of(stripes.strip_id(loc)), domain);
      }
      for (const StripLoc& loc : plan.reads) {
        EXPECT_EQ(map.domain_of(stripes.strip_id(loc)), domain);
      }
    }
  }
}

TEST(ConcurrencyMap, RecoveryStepsStayInsideOneDomain) {
  const auto layout = oi_fano();
  const StripeMap& stripes = layout->stripe_map();
  const ConcurrencyMap& map = layout->concurrency_map();
  for (std::size_t disk = 0; disk < layout->disks(); ++disk) {
    const auto plan = layout->recovery_plan({disk});
    ASSERT_TRUE(plan.has_value());
    for (const RecoveryStep& step : *plan) {
      const std::uint32_t domain = map.domain_of(stripes.strip_id(step.lost));
      for (const StripLoc& read : step.reads) {
        EXPECT_EQ(map.domain_of(stripes.strip_id(read)), domain);
      }
      // domains_of_steps therefore resolves each step to exactly one domain.
      const auto domains = core::domains_of_steps(
          stripes, map, std::span<const RecoveryStep>(&step, 1));
      ASSERT_EQ(domains.size(), 1u);
      EXPECT_EQ(domains.front(), domain);
    }
  }
}

TEST(ConcurrencyMap, DomainsOfRangeCoversTouchedStrips) {
  const auto layout = oi_fano();
  const StripeMap& stripes = layout->stripe_map();
  const ConcurrencyMap& map = layout->concurrency_map();
  const std::size_t strip_bytes = 64;
  // A range spanning logical strips 2..5 must contain exactly their domains,
  // sorted and deduplicated.
  const auto domains =
      core::domains_of_range(stripes, map, 2 * strip_bytes + 7,
                             3 * strip_bytes, strip_bytes);
  std::set<std::uint32_t> expected;
  for (std::size_t logical = 2; logical <= 5; ++logical) {
    expected.insert(map.domain_of(stripes.locate(logical)));
  }
  EXPECT_EQ(std::vector<std::uint32_t>(expected.begin(), expected.end()),
            domains);
  EXPECT_TRUE(core::domains_of_range(stripes, map, 0, 0, strip_bytes).empty());
}

TEST(DomainLockTable, SharedAndExclusiveGuardsCompose) {
  const auto layout = oi_fano();
  core::DomainLockTable table(layout->concurrency_map());
  ASSERT_GE(table.domains(), 2u);
  const std::uint32_t ids[] = {1, 0, 1, 0};  // unsorted, duplicated on purpose
  {
    auto shared_a = table.lock_shared(ids);
    auto shared_b = table.lock_shared(std::span<const std::uint32_t>(ids, 2));
    EXPECT_TRUE(shared_a.held());
    EXPECT_TRUE(shared_b.held());  // shared locks coexist
  }
  {
    auto exclusive = table.lock_exclusive(std::span<const std::uint32_t>(ids, 1));
    EXPECT_TRUE(exclusive.held());
    exclusive.release();
    EXPECT_FALSE(exclusive.held());
    auto again = table.lock_all_exclusive();  // released above, so no deadlock
    EXPECT_TRUE(again.held());
  }
  auto moved_from = table.lock_all_exclusive();
  auto moved_to = std::move(moved_from);
  EXPECT_FALSE(moved_from.held());
  EXPECT_TRUE(moved_to.held());
}

}  // namespace
}  // namespace oi::layout
