// Direct tests of the analysis helpers that the benches lean on.
#include "layout/analysis.hpp"

#include <gtest/gtest.h>

#include "bibd/constructions.hpp"
#include "layout/oi_raid.hpp"
#include "layout/raid5.hpp"

namespace oi::layout {
namespace {

TEST(Analysis, ReadImbalanceIgnoresFailedAndIdleDisks) {
  Raid5Layout layout(5, 10);
  const auto plan = layout.recovery_plan({2});
  const auto load = compute_rebuild_load(layout, {2}, *plan,
                                         SparePolicy::kDistributedSpare);
  // RAID5: every survivor reads the full disk -> perfectly balanced.
  EXPECT_DOUBLE_EQ(read_imbalance(load, {2}), 1.0);
}

TEST(Analysis, DedicatedSpareSplitsWritesPerFailedDisk) {
  OiRaidLayout layout({bibd::fano(), 3, 2});
  const std::vector<std::size_t> failed{1, 9};
  const auto plan = layout.recovery_plan(failed);
  ASSERT_TRUE(plan.has_value());
  const auto load =
      compute_rebuild_load(layout, failed, *plan, SparePolicy::kDedicatedSpare);
  ASSERT_EQ(load.writes.size(), layout.disks() + 2);
  EXPECT_DOUBLE_EQ(load.writes[layout.disks()],
                   static_cast<double>(layout.strips_per_disk()));
  EXPECT_DOUBLE_EQ(load.writes[layout.disks() + 1],
                   static_cast<double>(layout.strips_per_disk()));
  for (std::size_t d = 0; d < layout.disks(); ++d) {
    EXPECT_DOUBLE_EQ(load.writes[d], 0.0);
  }
}

TEST(Analysis, DistributedSpareSkipsFailedDisks) {
  OiRaidLayout layout({bibd::fano(), 3, 2});
  const std::vector<std::size_t> failed{0, 1};
  const auto plan = layout.recovery_plan(failed);
  ASSERT_TRUE(plan.has_value());
  const auto load =
      compute_rebuild_load(layout, failed, *plan, SparePolicy::kDistributedSpare);
  EXPECT_DOUBLE_EQ(load.writes[0], 0.0);
  EXPECT_DOUBLE_EQ(load.writes[1], 0.0);
  double total = 0.0;
  for (double w : load.writes) total += w;
  EXPECT_DOUBLE_EQ(total, static_cast<double>(plan->size()));
}

TEST(Analysis, RebuildTimeBoundValidation) {
  RebuildLoad load;
  load.reads = {1.0, 2.0};
  load.writes = {0.0, 0.0, 3.0};
  EXPECT_THROW(rebuild_time_lower_bound(load, 0.0, 1.0), std::invalid_argument);
  // Bound picks the slowest disk across both vectors (sizes may differ).
  EXPECT_DOUBLE_EQ(rebuild_time_lower_bound(load, 1.0, 2.0), 6.0);
}

TEST(Analysis, DataFractionFormulas) {
  EXPECT_DOUBLE_EQ(oi_raid_data_fraction(3, 3), 4.0 / 9.0);
  EXPECT_DOUBLE_EQ(raid5_data_fraction(21), 20.0 / 21.0);
  EXPECT_DOUBLE_EQ(raid50_data_fraction(3), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(replication_data_fraction(3), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(rs_data_fraction(6, 3), 2.0 / 3.0);
  EXPECT_THROW(oi_raid_data_fraction(1, 3), std::invalid_argument);
  EXPECT_THROW(replication_data_fraction(0), std::invalid_argument);
}

}  // namespace
}  // namespace oi::layout
