#include "layout/superblock.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "bibd/constructions.hpp"

namespace oi::layout {
namespace {

OiRaidLayout sample_layout(bool skew = true) {
  return OiRaidLayout({bibd::projective_plane(3), 4, 12, skew});
}

TEST(Superblock, RoundTripPreservesTheExactMapping) {
  const OiRaidLayout original = sample_layout();
  std::stringstream buffer(superblock_string(original));
  const OiRaidLayout restored = load_superblock(buffer);

  EXPECT_EQ(restored.disks(), original.disks());
  EXPECT_EQ(restored.strips_per_disk(), original.strips_per_disk());
  EXPECT_EQ(restored.data_strips(), original.data_strips());
  EXPECT_EQ(restored.design().blocks, original.design().blocks);
  // Bit-exact address map: every logical strip lands in the same place.
  for (std::size_t l = 0; l < original.data_strips(); ++l) {
    EXPECT_EQ(restored.locate(l), original.locate(l)) << "logical " << l;
  }
}

TEST(Superblock, PreservesSkewFlag) {
  const OiRaidLayout noskew = sample_layout(false);
  std::stringstream buffer(superblock_string(noskew));
  const OiRaidLayout restored = load_superblock(buffer);
  for (std::size_t l = 0; l < noskew.data_strips(); l += 17) {
    EXPECT_EQ(restored.locate(l), noskew.locate(l));
  }
  EXPECT_NE(restored.name().find("noskew"), std::string::npos);
}

TEST(Superblock, SearchedDesignRoundTrips) {
  // Difference-family designs have no re-derivable construction; the block
  // table in the superblock is what makes them restorable.
  const auto design = bibd::cyclic_difference_family(13, 3);
  ASSERT_TRUE(design.has_value());
  const OiRaidLayout original({*design, 3, 6});
  std::stringstream buffer(superblock_string(original));
  const OiRaidLayout restored = load_superblock(buffer);
  EXPECT_EQ(restored.design().blocks, original.design().blocks);
}

TEST(Superblock, RejectsTampering) {
  const std::string good = superblock_string(sample_layout());

  {
    std::stringstream s("not-a-superblock\n" + good);
    EXPECT_THROW(load_superblock(s), std::invalid_argument);
  }
  {
    // Drop one block line: block count no longer matches v*r/k.
    std::string cut = good;
    const auto pos = cut.find("block ");
    const auto eol = cut.find('\n', pos);
    cut.erase(pos, eol - pos + 1);
    std::stringstream s(cut);
    EXPECT_THROW(load_superblock(s), std::invalid_argument);
  }
  {
    // Corrupt a point id so some pair is covered twice.
    std::string mangled = good;
    const auto pos = mangled.find("block ");
    mangled[pos + 6] = '9';
    std::stringstream s(mangled);
    EXPECT_THROW(load_superblock(s), std::invalid_argument);
  }
  {
    // Truncated before "end".
    std::string truncated = good.substr(0, good.size() / 2);
    std::stringstream s(truncated);
    EXPECT_THROW(load_superblock(s), std::invalid_argument);
  }
}

TEST(SuperblockV2, RoundTripPreservesStateAndLayout) {
  const OiRaidLayout layout = sample_layout();
  ArrayState state;
  state.epoch = 42;
  state.strip_bytes = 4096;
  state.failed_disks = {3, 11};
  state.rebuild_watermark = 17;

  std::stringstream buffer(superblock_v2_string(layout, state));
  const LoadedSuperblock loaded = load_superblock_v2(buffer);
  EXPECT_EQ(loaded.state, state);
  EXPECT_EQ(loaded.layout.disks(), layout.disks());
  for (std::size_t l = 0; l < layout.data_strips(); l += 13) {
    EXPECT_EQ(loaded.layout.locate(l), layout.locate(l));
  }
}

TEST(SuperblockV2, ChecksumCatchesEveryKindOfDamage) {
  ArrayState state;
  state.epoch = 7;
  state.strip_bytes = 512;
  const std::string good = superblock_v2_string(sample_layout(), state);

  {
    // Flip one byte in the body: checksum no longer matches.
    std::string flipped = good;
    flipped[good.find("epoch 7") + 6] = '8';
    std::stringstream s(flipped);
    EXPECT_THROW(load_superblock_v2(s), std::invalid_argument);
  }
  {
    // Torn write: truncated before the checksum line.
    std::string torn = good.substr(0, good.rfind("checksum"));
    std::stringstream s(torn);
    EXPECT_THROW(load_superblock_v2(s), std::invalid_argument);
  }
  {
    // Empty file (slot created but nothing landed).
    std::stringstream s("");
    EXPECT_THROW(load_superblock_v2(s), std::invalid_argument);
  }
  {
    // v1 text is not a v2 superblock.
    std::stringstream s(superblock_string(sample_layout()));
    EXPECT_THROW(load_superblock_v2(s), std::invalid_argument);
  }
}

TEST(SuperblockV2, Fnv1a64MatchesReferenceVectors) {
  // Published FNV-1a test vectors.
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(fnv1a64("foobar"), 0x85944171f73967e8ULL);
}

class SuperblockSlots : public ::testing::Test {
 protected:
  void SetUp() override {
    char tmpl[] = "/tmp/oi-superblock-XXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr);
    dir_ = tmpl;
  }

  std::string slot_path(std::uint64_t epoch) const {
    return dir_ + "/superblock." + std::to_string(epoch % 2);
  }

  std::string dir_;
};

TEST_F(SuperblockSlots, LoaderPicksTheHighestValidEpoch) {
  const OiRaidLayout layout = sample_layout();
  EXPECT_FALSE(load_newest_superblock(dir_).has_value());

  ArrayState state;
  state.strip_bytes = 256;
  for (std::uint64_t epoch = 0; epoch < 3; ++epoch) {
    state.epoch = epoch;
    state.rebuild_watermark = epoch * 5;
    write_superblock_slot(dir_, layout, state);
    const auto loaded = load_newest_superblock(dir_);
    ASSERT_TRUE(loaded.has_value()) << "epoch " << epoch;
    EXPECT_EQ(loaded->state, state) << "epoch " << epoch;
  }
}

TEST_F(SuperblockSlots, TornSlotFallsBackToThePreviousEpoch) {
  const OiRaidLayout layout = sample_layout();
  ArrayState state;
  state.strip_bytes = 256;
  state.epoch = 4;
  write_superblock_slot(dir_, layout, state);

  // Epoch 5 goes to the other slot and tears mid-write: the hook throws at
  // "slot-partial", leaving a half-written file behind.
  state.epoch = 5;
  EXPECT_THROW(
      write_superblock_slot(dir_, layout, state,
                            [](const std::string& point) {
                              if (point == "slot-partial") {
                                throw std::runtime_error("injected crash");
                              }
                            }),
      std::runtime_error);

  const auto loaded = load_newest_superblock(dir_);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->state.epoch, 4u);

  // Garbage in a slot file is equally survivable.
  std::ofstream(slot_path(5)) << "total garbage\n";
  const auto after_garbage = load_newest_superblock(dir_);
  ASSERT_TRUE(after_garbage.has_value());
  EXPECT_EQ(after_garbage->state.epoch, 4u);
}

}  // namespace
}  // namespace oi::layout
