#include "layout/superblock.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "bibd/constructions.hpp"

namespace oi::layout {
namespace {

OiRaidLayout sample_layout(bool skew = true) {
  return OiRaidLayout({bibd::projective_plane(3), 4, 12, skew});
}

TEST(Superblock, RoundTripPreservesTheExactMapping) {
  const OiRaidLayout original = sample_layout();
  std::stringstream buffer(superblock_string(original));
  const OiRaidLayout restored = load_superblock(buffer);

  EXPECT_EQ(restored.disks(), original.disks());
  EXPECT_EQ(restored.strips_per_disk(), original.strips_per_disk());
  EXPECT_EQ(restored.data_strips(), original.data_strips());
  EXPECT_EQ(restored.design().blocks, original.design().blocks);
  // Bit-exact address map: every logical strip lands in the same place.
  for (std::size_t l = 0; l < original.data_strips(); ++l) {
    EXPECT_EQ(restored.locate(l), original.locate(l)) << "logical " << l;
  }
}

TEST(Superblock, PreservesSkewFlag) {
  const OiRaidLayout noskew = sample_layout(false);
  std::stringstream buffer(superblock_string(noskew));
  const OiRaidLayout restored = load_superblock(buffer);
  for (std::size_t l = 0; l < noskew.data_strips(); l += 17) {
    EXPECT_EQ(restored.locate(l), noskew.locate(l));
  }
  EXPECT_NE(restored.name().find("noskew"), std::string::npos);
}

TEST(Superblock, SearchedDesignRoundTrips) {
  // Difference-family designs have no re-derivable construction; the block
  // table in the superblock is what makes them restorable.
  const auto design = bibd::cyclic_difference_family(13, 3);
  ASSERT_TRUE(design.has_value());
  const OiRaidLayout original({*design, 3, 6});
  std::stringstream buffer(superblock_string(original));
  const OiRaidLayout restored = load_superblock(buffer);
  EXPECT_EQ(restored.design().blocks, original.design().blocks);
}

TEST(Superblock, RejectsTampering) {
  const std::string good = superblock_string(sample_layout());

  {
    std::stringstream s("not-a-superblock\n" + good);
    EXPECT_THROW(load_superblock(s), std::invalid_argument);
  }
  {
    // Drop one block line: block count no longer matches v*r/k.
    std::string cut = good;
    const auto pos = cut.find("block ");
    const auto eol = cut.find('\n', pos);
    cut.erase(pos, eol - pos + 1);
    std::stringstream s(cut);
    EXPECT_THROW(load_superblock(s), std::invalid_argument);
  }
  {
    // Corrupt a point id so some pair is covered twice.
    std::string mangled = good;
    const auto pos = mangled.find("block ");
    mangled[pos + 6] = '9';
    std::stringstream s(mangled);
    EXPECT_THROW(load_superblock(s), std::invalid_argument);
  }
  {
    // Truncated before "end".
    std::string truncated = good.substr(0, good.size() / 2);
    std::stringstream s(truncated);
    EXPECT_THROW(load_superblock(s), std::invalid_argument);
  }
}

}  // namespace
}  // namespace oi::layout
