#include "util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace oi {
namespace {

TEST(TableTest, AlignedRendering) {
  Table t({"scheme", "speedup"});
  t.row().cell("raid5").cell(1.0);
  t.row().cell("oi-raid").cell(6.75);
  const std::string text = t.to_string();
  EXPECT_NE(text.find("| scheme "), std::string::npos);
  EXPECT_NE(text.find("6.750"), std::string::npos);
  EXPECT_NE(text.find("+--"), std::string::npos);
}

TEST(TableTest, CellTypes) {
  Table t({"a", "b", "c", "d", "e"});
  t.row().cell(std::size_t{7}).cell(-3).cell(true).cell(2.5, 1).cell("x");
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("7,-3,yes,2.5,x"), std::string::npos);
}

TEST(TableTest, CsvQuoting) {
  Table t({"name"});
  t.row().cell("a,b");
  t.row().cell("say \"hi\"");
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"a,b\""), std::string::npos);
  EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(TableTest, RejectsOverfilledRow) {
  Table t({"only"});
  t.row().cell("x");
  EXPECT_THROW(t.cell("y"), std::invalid_argument);
}

TEST(TableTest, RejectsRowBeforeCell) {
  Table t({"a"});
  EXPECT_THROW(t.cell("x"), std::invalid_argument);
}

TEST(TableTest, RejectsIncompletePreviousRow) {
  Table t({"a", "b"});
  t.row().cell("x");
  EXPECT_THROW(t.row(), std::invalid_argument);
}

TEST(TableTest, EmptyHeaderRejected) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(SeriesPoint, Format) {
  std::ostringstream os;
  print_series_point(os, "oi", 21, 6.75);
  EXPECT_EQ(os.str(), "series=oi x=21 y=6.75\n");
}

}  // namespace
}  // namespace oi
