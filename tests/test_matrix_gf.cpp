#include "codes/matrix_gf.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "util/rng.hpp"

namespace oi::gf {
namespace {

TEST(MatrixGf, IdentityMultiplication) {
  const Matrix id = Matrix::identity(4);
  Matrix m(4, 4);
  Rng rng(1);
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < 4; ++c) m.at(r, c) = static_cast<Byte>(rng.uniform_u64(256));
  }
  EXPECT_EQ(m.multiply(id), m);
  EXPECT_EQ(id.multiply(m), m);
}

TEST(MatrixGf, InverseRoundTrip) {
  Rng rng(2);
  int invertible = 0;
  for (int trial = 0; trial < 50; ++trial) {
    Matrix m(5, 5);
    for (std::size_t r = 0; r < 5; ++r) {
      for (std::size_t c = 0; c < 5; ++c) {
        m.at(r, c) = static_cast<Byte>(rng.uniform_u64(256));
      }
    }
    const auto inv_m = m.inverted();
    if (!inv_m) continue;
    ++invertible;
    EXPECT_EQ(m.multiply(*inv_m), Matrix::identity(5));
    EXPECT_EQ(inv_m->multiply(m), Matrix::identity(5));
  }
  EXPECT_GT(invertible, 30);  // random GF(256) matrices are mostly invertible
}

TEST(MatrixGf, SingularReturnsNullopt) {
  Matrix m(3, 3);  // all zero
  EXPECT_FALSE(m.inverted().has_value());

  Matrix dup(2, 2);  // duplicate rows
  dup.at(0, 0) = 3;
  dup.at(0, 1) = 7;
  dup.at(1, 0) = 3;
  dup.at(1, 1) = 7;
  EXPECT_FALSE(dup.inverted().has_value());
}

TEST(MatrixGf, CauchySquareSubmatricesInvertible) {
  // The MDS property of the RS construction rests on this.
  const std::size_t k = 6;
  const std::size_t m = 3;
  const Matrix cauchy = Matrix::cauchy(m, k);
  // Any k x k submatrix of [I; C] must be invertible; test all ways of
  // replacing rows of I with rows of C (up to m replacements).
  Matrix gen(k + m, k);
  for (std::size_t i = 0; i < k; ++i) gen.at(i, i) = 1;
  for (std::size_t r = 0; r < m; ++r) {
    for (std::size_t c = 0; c < k; ++c) gen.at(k + r, c) = cauchy.at(r, c);
  }
  std::vector<std::size_t> rows(k + m);
  std::iota(rows.begin(), rows.end(), 0);
  // Enumerate all k-subsets of rows via bitmask (k+m = 9 -> 512 masks).
  for (unsigned mask = 0; mask < (1u << (k + m)); ++mask) {
    if (static_cast<std::size_t>(__builtin_popcount(mask)) != k) continue;
    std::vector<std::size_t> selected;
    for (std::size_t i = 0; i < k + m; ++i) {
      if (mask & (1u << i)) selected.push_back(i);
    }
    EXPECT_TRUE(gen.select_rows(selected).inverted().has_value())
        << "mask=" << mask;
  }
}

TEST(MatrixGf, VandermondeStructure) {
  const Matrix v = Matrix::vandermonde(4, 3);
  for (std::size_t r = 0; r < 4; ++r) {
    EXPECT_EQ(v.at(r, 0), 1);
    EXPECT_EQ(v.at(r, 2), mul(v.at(r, 1), v.at(r, 1)));
  }
}

TEST(MatrixGf, SelectRows) {
  Matrix m(3, 2);
  m.at(0, 0) = 1;
  m.at(1, 0) = 2;
  m.at(2, 0) = 3;
  const Matrix sel = m.select_rows({2, 0});
  EXPECT_EQ(sel.rows(), 2u);
  EXPECT_EQ(sel.at(0, 0), 3);
  EXPECT_EQ(sel.at(1, 0), 1);
}

TEST(MatrixGf, DimensionChecks) {
  EXPECT_THROW(Matrix(0, 3), std::invalid_argument);
  Matrix a(2, 3);
  Matrix b(2, 3);
  EXPECT_THROW(a.multiply(b), std::invalid_argument);
  EXPECT_THROW(a.inverted(), std::invalid_argument);
  EXPECT_THROW(a.at(5, 0), std::invalid_argument);
}

}  // namespace
}  // namespace oi::gf
