#include <gtest/gtest.h>

#include <sstream>

#include "workload/generator.hpp"
#include "workload/trace.hpp"

namespace oi::workload {
namespace {

TEST(UniformWorkloadTest, StaysInRangeAndMixesOps) {
  Rng rng(1);
  UniformWorkload gen(100, 0.7);
  std::size_t writes = 0;
  for (int i = 0; i < 10000; ++i) {
    const Access a = gen.next(rng);
    EXPECT_LT(a.logical, 100u);
    writes += a.is_write ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(writes) / 10000.0, 0.3, 0.03);
}

TEST(UniformWorkloadTest, PureReadAndPureWrite) {
  Rng rng(2);
  UniformWorkload reads(10, 1.0);
  UniformWorkload writes(10, 0.0);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(reads.next(rng).is_write);
    EXPECT_TRUE(writes.next(rng).is_write);
  }
}

TEST(ZipfWorkloadTest, HotSpotExists) {
  Rng rng(3);
  ZipfWorkload gen(1000, 0.99, 1.0);
  std::vector<int> counts(1000, 0);
  for (int i = 0; i < 50000; ++i) ++counts[gen.next(rng).logical];
  int head = 0;
  for (int i = 0; i < 10; ++i) head += counts[i];
  EXPECT_GT(head, 50000 / 10);  // top 1% gets way more than 1%
}

TEST(SequentialWorkloadTest, WrapsAround) {
  Rng rng(4);
  SequentialWorkload gen(5, 1.0);
  std::vector<std::size_t> seen;
  for (int i = 0; i < 12; ++i) seen.push_back(gen.next(rng).logical);
  EXPECT_EQ(seen[0], 0u);
  EXPECT_EQ(seen[4], 4u);
  EXPECT_EQ(seen[5], 0u);
  EXPECT_EQ(seen[11], 1u);
}

TEST(GeneratorFactory, BuildsEachKind) {
  for (auto kind : {WorkloadSpec::Kind::kUniform, WorkloadSpec::Kind::kZipf,
                    WorkloadSpec::Kind::kSequential}) {
    WorkloadSpec spec;
    spec.kind = kind;
    const auto gen = make_generator(spec, 50);
    ASSERT_NE(gen, nullptr);
    Rng rng(5);
    EXPECT_LT(gen->next(rng).logical, 50u);
    EXPECT_FALSE(gen->name().empty());
  }
}

TEST(GeneratorValidation, BadParams) {
  EXPECT_THROW(UniformWorkload(0, 0.5), std::invalid_argument);
  EXPECT_THROW(UniformWorkload(10, 1.5), std::invalid_argument);
  EXPECT_THROW(ZipfWorkload(10, 1.0, 0.5), std::invalid_argument);
}

TEST(TraceTest, RecordSaveLoadRoundTrip) {
  Rng rng(6);
  UniformWorkload gen(64, 0.5);
  const Trace trace = record(gen, rng, 64, 100);
  EXPECT_EQ(trace.accesses.size(), 100u);
  EXPECT_EQ(trace.capacity, 64u);

  std::stringstream buffer;
  save(trace, buffer);
  const Trace loaded = load(buffer);
  EXPECT_EQ(loaded.capacity, trace.capacity);
  ASSERT_EQ(loaded.accesses.size(), trace.accesses.size());
  for (std::size_t i = 0; i < trace.accesses.size(); ++i) {
    EXPECT_EQ(loaded.accesses[i].logical, trace.accesses[i].logical);
    EXPECT_EQ(loaded.accesses[i].is_write, trace.accesses[i].is_write);
  }
}

TEST(TraceTest, LoadRejectsGarbage) {
  std::stringstream bad_header("not-a-trace\n5\nR 1\n");
  EXPECT_THROW(load(bad_header), std::invalid_argument);

  std::stringstream bad_op("oi-trace v1\n5\nX 1\n");
  EXPECT_THROW(load(bad_op), std::invalid_argument);

  std::stringstream out_of_range("oi-trace v1\n5\nR 9\n");
  EXPECT_THROW(load(out_of_range), std::invalid_argument);
}

TEST(TraceTest, ReplayerLoops) {
  Trace trace;
  trace.capacity = 4;
  trace.accesses = {{0, false}, {1, true}, {2, false}};
  TraceReplayer replay(std::move(trace));
  Rng rng(7);
  EXPECT_EQ(replay.next(rng).logical, 0u);
  EXPECT_EQ(replay.next(rng).logical, 1u);
  EXPECT_EQ(replay.next(rng).logical, 2u);
  EXPECT_EQ(replay.next(rng).logical, 0u);  // wrapped
}

TEST(TraceTest, EmptyReplayRejected) {
  EXPECT_THROW(TraceReplayer(Trace{}), std::invalid_argument);
}

}  // namespace
}  // namespace oi::workload
