// Codec round-trip properties: for every codec and every erasure pattern up
// to its tolerance, decode(encode(data)) == data. Parameterized over codecs
// so new codecs inherit the whole battery.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <vector>

#include "codes/erasure_code.hpp"
#include "codes/rdp.hpp"
#include "codes/reed_solomon.hpp"
#include "codes/xor_code.hpp"
#include "util/rng.hpp"

namespace oi::codes {
namespace {

using Factory = std::function<std::unique_ptr<ErasureCode>()>;

struct CodecCase {
  std::string label;
  Factory make;
  std::size_t strip_size;  // must satisfy codec-specific divisibility
};

std::vector<Strip> random_data(std::size_t k, std::size_t size, Rng& rng) {
  std::vector<Strip> data(k);
  for (auto& strip : data) {
    strip.resize(size);
    for (auto& byte : strip) byte = static_cast<std::uint8_t>(rng.uniform_u64(256));
  }
  return data;
}

/// Encodes, erases the given strips, decodes, and checks equality.
void round_trip(const ErasureCode& code, std::size_t strip_size,
                const std::vector<std::size_t>& erased, Rng& rng) {
  const std::size_t k = code.data_strips();
  const std::size_t m = code.parity_strips();
  const auto data = random_data(k, strip_size, rng);
  std::vector<Strip> parity(m);
  code.encode(data, parity);

  std::vector<Strip> strips;
  strips.reserve(k + m);
  for (const auto& s : data) strips.push_back(s);
  for (const auto& s : parity) strips.push_back(s);
  const std::vector<Strip> original = strips;

  std::vector<bool> present(k + m, true);
  for (std::size_t e : erased) {
    present[e] = false;
    strips[e].assign(3, 0xEE);  // garbage of even wrong size
  }
  ASSERT_TRUE(code.decode(strips, present))
      << code.name() << " failed to decode a pattern within its tolerance";
  for (std::size_t i = 0; i < strips.size(); ++i) {
    EXPECT_EQ(strips[i], original[i]) << code.name() << " strip " << i;
  }
}

void all_patterns_of_size(const ErasureCode& code, std::size_t strip_size,
                          std::size_t erasures, Rng& rng) {
  const std::size_t total = code.total_strips();
  std::vector<std::size_t> pattern(erasures, 0);
  // Enumerate all combinations of `erasures` indices.
  std::function<void(std::size_t, std::size_t)> recurse = [&](std::size_t pos,
                                                              std::size_t start) {
    if (pos == erasures) {
      round_trip(code, strip_size, pattern, rng);
      return;
    }
    for (std::size_t i = start; i < total; ++i) {
      pattern[pos] = i;
      recurse(pos + 1, i + 1);
    }
  };
  recurse(0, 0);
}

class CodecTest : public ::testing::TestWithParam<CodecCase> {};

TEST_P(CodecTest, NoErasureDecodeIsIdentity) {
  Rng rng(1);
  const auto code = GetParam().make();
  round_trip(*code, GetParam().strip_size, {}, rng);
}

TEST_P(CodecTest, AllSingleErasures) {
  Rng rng(2);
  const auto code = GetParam().make();
  all_patterns_of_size(*code, GetParam().strip_size, 1, rng);
}

TEST_P(CodecTest, AllPatternsUpToTolerance) {
  Rng rng(3);
  const auto code = GetParam().make();
  for (std::size_t e = 2; e <= code->fault_tolerance(); ++e) {
    all_patterns_of_size(*code, GetParam().strip_size, e, rng);
  }
}

TEST_P(CodecTest, BeyondToleranceFailsCleanly) {
  Rng rng(4);
  const auto code = GetParam().make();
  const std::size_t t = code->fault_tolerance();
  if (code->total_strips() <= t + 1) GTEST_SKIP() << "cannot erase t+1 strips";

  const std::size_t k = code->data_strips();
  const auto data = random_data(k, GetParam().strip_size, rng);
  std::vector<Strip> parity(code->parity_strips());
  code->encode(data, parity);
  std::vector<Strip> strips;
  for (const auto& s : data) strips.push_back(s);
  for (const auto& s : parity) strips.push_back(s);
  std::vector<bool> present(code->total_strips(), true);
  for (std::size_t e = 0; e <= t; ++e) present[e] = false;
  EXPECT_FALSE(code->decode(strips, present));
}

TEST_P(CodecTest, RepairReadSetSuffices) {
  Rng rng(5);
  const auto code = GetParam().make();
  std::vector<bool> present(code->total_strips(), true);
  present[0] = false;
  const auto reads = code->repair_read_set(present);
  EXPECT_GE(reads.size(), code->data_strips() == 1 ? 1u : code->data_strips());
  for (std::size_t idx : reads) EXPECT_TRUE(present[idx]);
}

TEST_P(CodecTest, EmptyStripsSupported) {
  Rng rng(6);
  const auto code = GetParam().make();
  round_trip(*code, 0, {0}, rng);
}

INSTANTIATE_TEST_SUITE_P(
    Codecs, CodecTest,
    ::testing::Values(
        CodecCase{"xor_k1", [] { return std::make_unique<XorCode>(1); }, 64},
        CodecCase{"xor_k2", [] { return std::make_unique<XorCode>(2); }, 64},
        CodecCase{"xor_k4", [] { return std::make_unique<XorCode>(4); }, 64},
        CodecCase{"xor_k8", [] { return std::make_unique<XorCode>(8); }, 17},
        CodecCase{"rs_2_1", [] { return std::make_unique<ReedSolomon>(2, 1); }, 32},
        CodecCase{"rs_4_2", [] { return std::make_unique<ReedSolomon>(4, 2); }, 32},
        CodecCase{"rs_6_3", [] { return std::make_unique<ReedSolomon>(6, 3); }, 31},
        CodecCase{"rs_10_4", [] { return std::make_unique<ReedSolomon>(10, 4); }, 16},
        CodecCase{"rdp_p3", [] { return std::make_unique<RdpCode>(3); }, 16},
        CodecCase{"rdp_p5", [] { return std::make_unique<RdpCode>(5); }, 16},
        CodecCase{"rdp_p7", [] { return std::make_unique<RdpCode>(7); }, 12},
        CodecCase{"rdp_p11", [] { return std::make_unique<RdpCode>(11); }, 20}),
    [](const auto& info) { return info.param.label; });

TEST(XorCodeTest, ApplyDeltaMatchesReencode) {
  Rng rng(7);
  XorCode code(4);
  auto data = random_data(4, 64, rng);
  std::vector<Strip> parity(1);
  code.encode(data, parity);

  Strip new_data(64);
  for (auto& b : new_data) b = static_cast<std::uint8_t>(rng.uniform_u64(256));
  XorCode::apply_delta(parity[0], data[2], new_data);
  data[2] = new_data;

  std::vector<Strip> expected(1);
  code.encode(data, expected);
  EXPECT_EQ(parity[0], expected[0]);
}

TEST(XorCodeTest, DeltaSizeMismatchThrows) {
  Strip parity(4), old_data(4), new_data(3);
  EXPECT_THROW(XorCode::apply_delta(parity, old_data, new_data), std::invalid_argument);
}

TEST(RdpTest, RejectsNonPrime) {
  EXPECT_THROW(RdpCode(4), std::invalid_argument);
  EXPECT_THROW(RdpCode(9), std::invalid_argument);
  EXPECT_THROW(RdpCode(1), std::invalid_argument);
}

TEST(RdpTest, RejectsIndivisibleStripSize) {
  RdpCode code(5);  // rows = 4
  Rng rng(8);
  auto data = random_data(4, 10, rng);  // 10 % 4 != 0
  std::vector<Strip> parity(2);
  EXPECT_THROW(code.encode(data, parity), std::invalid_argument);
}

TEST(RsTest, RejectsTooManyStrips) {
  EXPECT_THROW(ReedSolomon(250, 10), std::invalid_argument);
}

TEST(CodecValidation, WrongStripCountThrows) {
  XorCode code(3);
  std::vector<Strip> strips(2);
  std::vector<bool> present(2, true);
  EXPECT_THROW(code.decode(strips, present), std::invalid_argument);
}

TEST(CodecValidation, InconsistentSizesThrow) {
  XorCode code(2);
  std::vector<Strip> strips{{1, 2}, {1, 2, 3}, {0, 0}};
  std::vector<bool> present(3, true);
  EXPECT_THROW(code.decode(strips, present), std::invalid_argument);
}

TEST(CodecValidation, ErasedCountHelper) {
  EXPECT_EQ(erased_count({true, false, true, false}), 2u);
  EXPECT_EQ(erased_count({}), 0u);
}

}  // namespace
}  // namespace oi::codes
