// CodedFlatLayout: the flat MDS baseline in the layout framework. Checks
// mapping/roles, the stripe-buffer recovery plan (k reads per stripe, not
// per lost strip), degraded-read sources, and the XOR-semantics guard.
#include "layout/coded_flat.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "codes/reed_solomon.hpp"
#include "core/array.hpp"
#include "layout/analysis.hpp"
#include "sim/rebuild.hpp"

namespace oi::layout {
namespace {

std::shared_ptr<codes::ReedSolomon> rs63() {
  return std::make_shared<codes::ReedSolomon>(6, 3);
}

TEST(CodedFlat, GeometryAndMapping) {
  CodedFlatLayout layout(rs63(), 12);
  EXPECT_EQ(layout.disks(), 9u);
  EXPECT_EQ(layout.data_strips(), 72u);
  EXPECT_EQ(layout.fault_tolerance(), 3u);
  EXPECT_NEAR(layout.data_fraction(), 6.0 / 9.0, 1e-12);
  EXPECT_EQ(check_mapping(layout), "");
  EXPECT_EQ(check_relations(layout), "");
  EXPECT_FALSE(layout.xor_semantics());
}

TEST(CodedFlat, RecoveryPlanReadsKPerStripeOnce) {
  CodedFlatLayout layout(rs63(), 10);
  const auto plan = layout.recovery_plan({0, 4});
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(check_recovery_plan(layout, {0, 4}, *plan), "");
  // 2 lost strips per stripe, but only k = 6 reads per stripe total.
  std::size_t total_reads = 0;
  for (const auto& step : *plan) total_reads += step.reads.size();
  EXPECT_EQ(total_reads, 10u * 6u);
  EXPECT_EQ(plan->size(), 2u * 10u);
}

TEST(CodedFlat, BeyondToleranceIsNull) {
  CodedFlatLayout layout(rs63(), 4);
  EXPECT_TRUE(layout.recovery_plan({0, 1, 2}).has_value());
  EXPECT_FALSE(layout.recovery_plan({0, 1, 2, 3}).has_value());
}

TEST(CodedFlat, RotatedReadSelectionBalancesLoad) {
  CodedFlatLayout layout(rs63(), 90);
  const auto plan = layout.recovery_plan({2});
  const auto reads = per_disk_read_load(layout, {2}, *plan);
  double max = 0.0, min = 1e18;
  for (std::size_t d = 0; d < reads.size(); ++d) {
    if (d == 2) continue;
    max = std::max(max, reads[d]);
    min = std::min(min, reads[d]);
  }
  // Every survivor reads roughly k/(n-1) = 6/8 of a disk.
  EXPECT_GT(min, 0.0);
  EXPECT_LE(max / min, 1.25);  // slight bias from skipping the failed disk
}

TEST(CodedFlat, DegradedReadSourcesAreKHealthyStrips) {
  CodedFlatLayout layout(rs63(), 5);
  const std::set<std::size_t> failed{1, 3};
  const auto sources = layout.degraded_read_sources({1, 2}, failed);
  ASSERT_EQ(sources.size(), 6u);
  for (const auto& s : sources) {
    EXPECT_EQ(s.offset, 2u);
    EXPECT_FALSE(failed.contains(s.disk));
  }
  // Beyond tolerance: no sources.
  const std::set<std::size_t> too_many{1, 3, 5, 7};
  EXPECT_TRUE(layout.degraded_read_sources({1, 2}, too_many).empty());
}

TEST(CodedFlat, SmallWritePlanTouchesAllParities) {
  CodedFlatLayout layout(rs63(), 4);
  const auto plan = layout.small_write_plan(7);
  EXPECT_EQ(plan.parity_updates, 3u);
  EXPECT_EQ(plan.writes.size(), 4u);
  EXPECT_EQ(plan.reads.size(), 4u);
}

TEST(CodedFlat, CoreArrayRefusesNonXorLayout) {
  auto layout = std::make_shared<CodedFlatLayout>(rs63(), 4);
  EXPECT_THROW(core::Array(layout, 64), std::invalid_argument);
}

TEST(CodedFlat, SimulatedRebuildHasNoSpeedup) {
  // The point of the baseline: RS(6,3) has OI-RAID's tolerance but its
  // rebuild still reads ~full disks from k survivors.
  const auto code = rs63();
  CodedFlatLayout layout(code, 90);
  sim::SimConfig config;
  config.disk.strip_bytes = 4 * static_cast<std::size_t>(kMiB);
  config.max_inflight_steps = 1'000'000;
  const auto result = sim::simulate(layout, {0}, config);
  const double full_disk_seconds =
      static_cast<double>(layout.strips_per_disk()) * config.disk.transfer_seconds();
  // Busiest survivor reads ~k/(n-1) of a disk and the writes add more; total
  // time stays within a small factor of a full disk read (speedup ~1, not
  // the ~5x OI-RAID achieves at this scale).
  EXPECT_GT(result.rebuild_seconds, 0.5 * full_disk_seconds);
}

}  // namespace
}  // namespace oi::layout
