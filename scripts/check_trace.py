#!/usr/bin/env python3
"""Lints a Chrome trace-event JSON produced by the oi-raid tracer.

Structural checks (always on):
  * the file is valid JSON with a `traceEvents` list;
  * every B (span begin) on a (pid, tid) lane has a matching E with the same
    name, properly nested (stack discipline), with non-negative duration;
  * metadata events ('M') are well-formed (thread_name / process_name with an
    args.name label).

Request-tracing checks (oiraidd server spans, see docs/OBSERVABILITY.md):
  * --require-span NAME: at least one completed span with this name exists
    (repeatable; e.g. --require-span request --require-span decode);
  * every `request` span carries args with a positive integer `req` id and an
    `op` string, and its child stage spans lie within the request interval;
  * per request, the stage durations (decode/queue/lock/io/codec/reply --
    whichever are present) sum to the request duration within --tolerance
    (default 5%), the paper-trail form of "the stages account for the whole
    end-to-end latency".

Exit 0 when everything holds; exit 1 with one line per violation otherwise.

Usage: check_trace.py TRACE.json [--require-span NAME]... [--min-requests N]
                      [--tolerance FRAC]
"""

import argparse
import json
import sys

STAGES = ("decode", "queue", "lock", "io", "codec", "reply")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", help="Chrome trace-event JSON file")
    parser.add_argument("--require-span", action="append", default=[],
                        metavar="NAME",
                        help="require >= 1 completed span with this name")
    parser.add_argument("--min-requests", type=int, default=0,
                        help="require >= N completed `request` spans")
    parser.add_argument("--tolerance", type=float, default=0.05,
                        help="stage-sum vs request-duration tolerance "
                             "(fraction; default 0.05)")
    args = parser.parse_args()

    errors = []
    with open(args.trace) as fh:
        doc = json.load(fh)
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        sys.exit(f"{args.trace}: no traceEvents list")

    # Walk each lane with a span stack; collect completed spans.
    stacks = {}          # (pid, tid) -> [event, ...]
    spans = []           # (name, pid, tid, start_us, end_us, args)
    for i, e in enumerate(events):
        ph = e.get("ph")
        if ph == "M":
            if e.get("name") not in ("thread_name", "process_name",
                                     "thread_sort_index"):
                errors.append(f"event {i}: unknown metadata kind {e.get('name')!r}")
            elif "name" not in e.get("args", {}):
                errors.append(f"event {i}: metadata without args.name")
            continue
        if ph not in ("B", "E"):
            continue  # counters / async pairs are fine but unchecked here
        lane = (e.get("pid"), e.get("tid"))
        if ph == "B":
            stacks.setdefault(lane, []).append(e)
            continue
        stack = stacks.get(lane) or []
        if not stack:
            errors.append(f"event {i}: E {e.get('name')!r} on lane {lane} "
                          "without a matching B")
            continue
        b = stack.pop()
        if b.get("name") != e.get("name"):
            errors.append(f"event {i}: E {e.get('name')!r} closes "
                          f"B {b.get('name')!r} (bad nesting) on lane {lane}")
            continue
        if e["ts"] < b["ts"]:
            errors.append(f"event {i}: span {e.get('name')!r} has negative "
                          f"duration ({b['ts']} -> {e['ts']})")
        spans.append((b["name"], *lane, b["ts"], e["ts"], b.get("args", {})))
    for lane, stack in stacks.items():
        for b in stack:
            errors.append(f"unclosed span {b.get('name')!r} on lane {lane}")

    by_name = {}
    for s in spans:
        by_name.setdefault(s[0], []).append(s)
    for name in args.require_span:
        if not by_name.get(name):
            errors.append(f"no completed span named {name!r}")

    # Per-request checks: args schema, containment, stage-sum accounting.
    requests = by_name.get("request", [])
    if len(requests) < args.min_requests:
        errors.append(f"only {len(requests)} request span(s); "
                      f"need >= {args.min_requests}")
    for _, pid, tid, start, end, req_args in requests:
        rid = req_args.get("req")
        if not isinstance(rid, int) or rid <= 0:
            errors.append(f"request span at ts={start}: bad args.req {rid!r}")
        if not isinstance(req_args.get("op"), str):
            errors.append(f"request span at ts={start}: missing args.op")
        stage_sum = 0.0
        for stage in STAGES:
            for name, spid, stid, s, e, _ in by_name.get(stage, []):
                if spid != pid or stid != tid:
                    continue
                # Tolerate a microsecond of float slack at the edges.
                if s < start - 1 or e > end + 1:
                    continue  # a different request on the same lane
                stage_sum += e - s
        total = end - start
        if total > 0 and abs(stage_sum - total) > args.tolerance * total + 2.0:
            errors.append(
                f"request {req_args.get('req')}: stages sum to "
                f"{stage_sum:.1f} us but the request took {total:.1f} us "
                f"(> {args.tolerance:.0%} apart)")

    if errors:
        for err in errors:
            print(f"check_trace: {err}", file=sys.stderr)
        sys.exit(1)
    print(f"check_trace: ok ({len(spans)} spans, {len(requests)} requests, "
          f"{len(events)} events)")


if __name__ == "__main__":
    main()
