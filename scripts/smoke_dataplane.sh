#!/usr/bin/env bash
# End-to-end smoke test of the real-bytes data plane, driving the actual
# binaries the way an operator would:
#
#   1. start oiraidd on an ephemeral port with file backends,
#   2. write data through oiraidctl and read it back,
#   3. fail a disk mid-traffic and keep writing while the daemon's
#      background thread rebuilds it online,
#   4. wait for the rebuild to finish (status polling), verify every byte,
#   5. restart the daemon on the same directory and verify again (real
#      persistence, not process memory),
#   6. restart with tracing + slow-request capture on, drive traced traffic,
#      and validate the /trace span trees (scripts/check_trace.py), the
#      `oiraidctl profile` report, and the structured slow-request log lines.
#
# Usage: scripts/smoke_dataplane.sh [BUILD_DIR]   (default: build)
# Leaves its artifacts (metrics stream, daemon log) in $SMOKE_DIR if that
# variable is set, else in a mktemp directory that is printed at the end.
set -euo pipefail

BUILD_DIR="${1:-build}"
OIRAIDD="$BUILD_DIR/tools/oiraidd"
OIRAIDCTL="$BUILD_DIR/tools/oiraidctl"
[ -x "$OIRAIDD" ] || { echo "missing $OIRAIDD (build first)"; exit 1; }
[ -x "$OIRAIDCTL" ] || { echo "missing $OIRAIDCTL (build first)"; exit 1; }

WORK="${SMOKE_DIR:-$(mktemp -d /tmp/oi-smoke-XXXXXX)}"
mkdir -p "$WORK"
ARRAY_DIR="$WORK/array"
PORT_FILE="$WORK/port"
DAEMON_LOG="$WORK/oiraidd.log"
DAEMON_PID=""

cleanup() {
  if [ -n "$DAEMON_PID" ] && kill -0 "$DAEMON_PID" 2>/dev/null; then
    kill "$DAEMON_PID" 2>/dev/null || true
    wait "$DAEMON_PID" 2>/dev/null || true
  fi
}
trap cleanup EXIT

start_daemon() {  # start_daemon [extra oiraidd flags...]
  rm -f "$PORT_FILE"
  "$OIRAIDD" --dir "$ARRAY_DIR" --v 7 --k 3 --m 3 --height 6 \
    --strip-bytes 4096 --port 0 --port-file "$PORT_FILE" \
    --metrics-stream-out "$WORK/metrics.jsonl" "$@" >>"$DAEMON_LOG" 2>&1 &
  DAEMON_PID=$!
  for _ in $(seq 1 100); do
    [ -s "$PORT_FILE" ] && break
    kill -0 "$DAEMON_PID" 2>/dev/null || { cat "$DAEMON_LOG"; exit 1; }
    sleep 0.1
  done
  [ -s "$PORT_FILE" ] || { echo "daemon never wrote $PORT_FILE"; cat "$DAEMON_LOG"; exit 1; }
  PORT=$(cat "$PORT_FILE")
  echo "oiraidd up on port $PORT (pid $DAEMON_PID)"
}

stop_daemon() {
  "$OIRAIDCTL" stop --port "$PORT"
  wait "$DAEMON_PID" 2>/dev/null || true
  DAEMON_PID=""
}

failed_count() {
  "$OIRAIDCTL" status --port "$PORT" | awk '$1 == "failed" {print $2}'
}

verify() {  # verify FILE OFFSET
  "$OIRAIDCTL" read --port "$PORT" --offset "$2" --length "$(stat -c %s "$1")" \
    --out "$WORK/readback.bin"
  cmp "$1" "$WORK/readback.bin" || { echo "FAIL: read-back mismatch at offset $2"; exit 1; }
}

echo "== 1. start a fresh array"
start_daemon
"$OIRAIDCTL" ping --port "$PORT"
"$OIRAIDCTL" status --port "$PORT"

echo "== 2. write + read back"
head -c 20000 /dev/urandom > "$WORK/blob-a.bin"
"$OIRAIDCTL" write --port "$PORT" --offset 8192 --in "$WORK/blob-a.bin"
verify "$WORK/blob-a.bin" 8192

echo "== 3. fail disk 3 mid-traffic"
"$OIRAIDCTL" fail --port "$PORT" --disk 3
head -c 20000 /dev/urandom > "$WORK/blob-b.bin"
# Keep the data plane busy while the rebuild thread works.
"$OIRAIDCTL" write --port "$PORT" --offset 65536 --in "$WORK/blob-b.bin"
verify "$WORK/blob-b.bin" 65536

echo "== 4. wait for the online rebuild"
for _ in $(seq 1 200); do
  [ "$(failed_count)" = "0" ] && break
  sleep 0.1
done
[ "$(failed_count)" = "0" ] || { echo "FAIL: rebuild never finished"; "$OIRAIDCTL" status --port "$PORT"; exit 1; }
verify "$WORK/blob-a.bin" 8192
verify "$WORK/blob-b.bin" 65536
"$OIRAIDCTL" status --port "$PORT"

echo "== 5. restart on the same directory (persistence)"
stop_daemon
start_daemon
verify "$WORK/blob-a.bin" 8192
verify "$WORK/blob-b.bin" 65536
stop_daemon

echo "== 6. tracing + slow-request capture"
SCRIPT_DIR="$(cd "$(dirname "$0")" && pwd)"
# A 1 us threshold makes every request a "slow" capture, so the bounded ring
# and the structured log line are exercised deterministically.
start_daemon --metrics-port 0 --trace-out "$WORK/oiraidd-trace.json" \
  --trace-ring 4096 --slow-request-us 1
for _ in $(seq 1 100); do
  METRICS_PORT=$(sed -n 's/.*metrics exporter on 127\.0\.0\.1:\([0-9]*\).*/\1/p' \
    "$DAEMON_LOG" | tail -1)
  [ -n "$METRICS_PORT" ] && break
  sleep 0.1
done
[ -n "$METRICS_PORT" ] || { echo "FAIL: no metrics exporter port in log"; cat "$DAEMON_LOG"; exit 1; }
"$OIRAIDCTL" write --port "$PORT" --trace --offset 0 --in "$WORK/blob-a.bin" \
  2> "$WORK/trace-id.txt"
grep -q "^trace id [0-9]" "$WORK/trace-id.txt" || { echo "FAIL: no client trace id"; exit 1; }
"$OIRAIDCTL" read --port "$PORT" --trace --offset 0 \
  --length "$(stat -c %s "$WORK/blob-a.bin")" --out "$WORK/readback.bin" 2>/dev/null
cmp "$WORK/blob-a.bin" "$WORK/readback.bin" || { echo "FAIL: traced read mismatch"; exit 1; }
"$OIRAIDCTL" profile --port "$PORT" | tee "$WORK/profile.txt"
grep -q "slow-request id=" "$WORK/profile.txt" || { echo "FAIL: no slow-request capture in profile"; exit 1; }
grep -q "oiraidd slow-request id=" "$DAEMON_LOG" || { echo "FAIL: no slow-request log line"; exit 1; }
python3 -c "import urllib.request; open('$WORK/trace.json','wb').write(
    urllib.request.urlopen('http://127.0.0.1:$METRICS_PORT/trace', timeout=5).read())"
python3 "$SCRIPT_DIR/check_trace.py" "$WORK/trace.json" \
  --require-span request --require-span decode --require-span queue \
  --require-span reply --min-requests 2
stop_daemon

[ -s "$WORK/metrics.jsonl" ] || { echo "FAIL: no metrics stream produced"; exit 1; }
echo "PASS: data-plane smoke OK (artifacts in $WORK)"
