#!/usr/bin/env python3
"""Validate a Prometheus text-format 0.0.4 exposition (e.g. a /metrics scrape).

Usage:
    check_promtext.py scrape.txt [more.txt ...]
    some-command | check_promtext.py -          # read stdin
    check_promtext.py scrape.txt --require-metric oi_reliability_mc_ess ...
    check_promtext.py first.txt --advances-over second.txt \
                      --metric oi_reliability_mc_trials_done

Checks, per file:
  * every line is a sample, a ``# HELP``/``# TYPE`` comment, or rejected;
  * metric names match ``[a-zA-Z_:][a-zA-Z0-9_:]*``;
  * every sample belongs to a family announced by ``# TYPE`` (and ``# HELP``)
    earlier in the file, with ``_total``/``_bucket``/``_sum``/``_count``
    suffixes resolving to their base family;
  * ``# TYPE`` values are counter / gauge / histogram, at most one per family;
  * sample values parse as floats (``+Inf``/``-Inf``/``NaN`` accepted);
  * histogram families have increasing ``le`` bounds, monotone cumulative
    bucket counts, a ``+Inf`` bucket equal to ``_count``, and a ``_sum``.

``--require-metric NAME`` (repeatable) additionally fails unless an
unlabelled sample NAME is present.  ``--advances-over LATER_FILE`` with
``--metric NAME`` (repeatable) checks NAME strictly increased between the
first file and LATER_FILE -- the mid-run liveness check CI runs against two
scrapes of a working Monte-Carlo campaign.

Exit code 1 lists every violation; 0 means the exposition is valid.
No dependencies beyond the standard library.
"""

import argparse
import math
import re
import sys
from pathlib import Path

NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
# name, optional {labels}, value (timestamps are legal in 0.0.4 but this
# repo's exporter never emits them, so a trailing field is rejected).
SAMPLE_RE = re.compile(r"^([^\s{]+)(\{[^}]*\})?\s+(\S+)$")
TYPES = {"counter", "gauge", "histogram"}
SUFFIXES = ("_total", "_bucket", "_sum", "_count")


def parse_value(text: str) -> float:
    if text == "+Inf" or text == "Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    if text == "NaN":
        return math.nan
    return float(text)


def resolve_family(name: str, type_of: dict[str, str]) -> str:
    """Map a sample name to its announced family (stripping known suffixes)."""
    if name in type_of:
        return name
    for suffix in SUFFIXES:
        if name.endswith(suffix) and name[: -len(suffix)] in type_of:
            return name[: -len(suffix)]
    return name


def lint(text: str, label: str) -> tuple[list[str], dict[str, float]]:
    """Return (violations, unlabelled-sample values) for one exposition."""
    errors: list[str] = []
    type_of: dict[str, str] = {}
    helped: set[str] = set()
    values: dict[str, float] = {}
    # family -> list of (le, cumulative count); plus _sum/_count presence.
    buckets: dict[str, list[tuple[float, float]]] = {}
    hist_count: dict[str, float] = {}
    hist_sum: dict[str, bool] = {}

    for lineno, line in enumerate(text.splitlines(), start=1):
        where = f"{label}:{lineno}"
        if not line:
            errors.append(f"{where}: blank line in exposition")
            continue
        if line.startswith("# HELP ") or line.startswith("# TYPE "):
            fields = line[7:].split(None, 1)
            if len(fields) != 2 or not fields[1].strip():
                errors.append(f"{where}: empty HELP/TYPE payload: {line!r}")
                continue
            family, payload = fields
            if not NAME_RE.match(family):
                errors.append(f"{where}: bad family name {family!r}")
            if line.startswith("# TYPE "):
                if payload not in TYPES:
                    errors.append(f"{where}: unknown TYPE {payload!r}")
                if family in type_of:
                    errors.append(f"{where}: duplicate TYPE for {family}")
                type_of[family] = payload
            else:
                helped.add(family)
            continue
        if line.startswith("#"):
            errors.append(f"{where}: unknown comment form: {line!r}")
            continue

        match = SAMPLE_RE.match(line)
        if not match:
            errors.append(f"{where}: malformed sample line: {line!r}")
            continue
        name, labels, value_text = match.groups()
        if not NAME_RE.match(name):
            errors.append(f"{where}: bad metric name {name!r}")
            continue
        try:
            value = parse_value(value_text)
        except ValueError:
            errors.append(f"{where}: unparsable value: {line!r}")
            continue

        family = resolve_family(name, type_of)
        if family not in type_of:
            errors.append(f"{where}: sample before/without TYPE: {name}")
        if family not in helped:
            errors.append(f"{where}: sample without HELP: {name}")

        if labels is None:
            values[name] = value
        if name == family + "_bucket":
            le_match = re.match(r'^\{le="([^"]*)"\}$', labels or "")
            if not le_match:
                errors.append(f"{where}: bucket without le label: {line!r}")
                continue
            buckets.setdefault(family, []).append(
                (parse_value(le_match.group(1)), value)
            )
        elif name == family + "_count":
            hist_count[family] = value
        elif name == family + "_sum":
            hist_sum[family] = True

    for family, kind in type_of.items():
        if kind != "histogram":
            continue
        series = buckets.get(family, [])
        prev_le, prev_count = -math.inf, 0.0
        inf_bucket = None
        for le, count in series:
            if le <= prev_le:
                errors.append(f"{label}: {family} bucket bounds must increase")
            if count < prev_count:
                errors.append(f"{label}: {family} buckets must be cumulative")
            prev_le, prev_count = le, count
            if le == math.inf:
                inf_bucket = count
        if inf_bucket is None:
            errors.append(f"{label}: {family} is missing the +Inf bucket")
        elif inf_bucket != hist_count.get(family):
            errors.append(f"{label}: {family} +Inf bucket != _count")
        if family not in hist_sum:
            errors.append(f"{label}: {family} is missing _sum")
    return errors, values


def read_input(arg: str) -> tuple[str, str]:
    if arg == "-":
        return sys.stdin.read(), "<stdin>"
    return Path(arg).read_text(), arg


def main() -> int:
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter
    )
    parser.add_argument("files", nargs="+", help="exposition files ('-' = stdin)")
    parser.add_argument(
        "--require-metric",
        action="append",
        default=[],
        metavar="NAME",
        help="fail unless an unlabelled sample NAME exists (repeatable)",
    )
    parser.add_argument(
        "--advances-over",
        metavar="LATER_FILE",
        help="a later scrape; --metric names must strictly increase into it",
    )
    parser.add_argument(
        "--metric",
        action="append",
        default=[],
        metavar="NAME",
        help="metric checked by --advances-over (repeatable)",
    )
    args = parser.parse_args()
    if args.advances_over and not args.metric:
        parser.error("--advances-over requires at least one --metric")
    if args.metric and not args.advances_over:
        parser.error("--metric only makes sense with --advances-over")

    errors: list[str] = []
    first_values: dict[str, float] | None = None
    for arg in args.files:
        text, label = read_input(arg)
        file_errors, values = lint(text, label)
        errors.extend(file_errors)
        if first_values is None:
            first_values = values
        for name in args.require_metric:
            if name not in values:
                errors.append(f"{label}: required metric missing: {name}")

    if args.advances_over:
        text, label = read_input(args.advances_over)
        file_errors, later = lint(text, label)
        errors.extend(file_errors)
        assert first_values is not None
        for name in args.metric:
            before = first_values.get(name)
            after = later.get(name)
            if before is None or after is None:
                errors.append(f"advance check: {name} missing from a scrape")
            elif not after > before:
                errors.append(
                    f"advance check: {name} did not advance "
                    f"({before} -> {after})"
                )

    for error in errors:
        print(error, file=sys.stderr)
    if errors:
        print(f"{len(errors)} violation(s)", file=sys.stderr)
        return 1
    print(f"ok: {len(args.files)} exposition(s) valid")
    return 0


if __name__ == "__main__":
    sys.exit(main())
