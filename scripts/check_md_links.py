#!/usr/bin/env python3
"""Markdown link checker for the repo's documentation set.

Validates every inline markdown link ``[text](target)`` in the given files
(or the default doc set):

* relative targets must exist on disk (anchors are stripped; checked
  relative to the linking file's directory);
* absolute http(s) URLs are only checked for obvious malformation -- CI
  must not depend on external sites being up;
* bare ``docs/FOO.md``-style path mentions in backticks are also verified,
  since the docs cross-reference each other that way.

Exit code 0 when everything resolves, 1 otherwise (one line per broken
link). No dependencies beyond the standard library.
"""

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_FILES = [
    "README.md",
    "DESIGN.md",
    "EXPERIMENTS.md",
    "docs/OBSERVABILITY.md",
    "docs/BENCH_JSON.md",
    "docs/RELIABILITY.md",
    "docs/QOS.md",
]

# [text](target) -- non-greedy text, target up to the closing paren.
INLINE_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
# `docs/NAME.md` / `src/...` style backticked path mentions.
BACKTICK_PATH = re.compile(r"`((?:docs|src|bench|tests|tools|examples|scripts)/[A-Za-z0-9_./-]+)`")
URL = re.compile(r"^https?://[^\s/$.?#].[^\s]*$")


def check_file(md: Path) -> list[str]:
    errors = []
    text = md.read_text(encoding="utf-8")
    # Strip fenced code blocks: their contents are commands, not links.
    text = re.sub(r"```.*?```", "", text, flags=re.DOTALL)

    for match in INLINE_LINK.finditer(text):
        target = match.group(1)
        if target.startswith(("http://", "https://")):
            if not URL.match(target):
                errors.append(f"{md}: malformed URL {target!r}")
            continue
        if target.startswith(("#", "mailto:")):
            continue
        path = target.split("#", 1)[0]
        if not path:
            continue
        resolved = (md.parent / path).resolve()
        if not resolved.exists():
            errors.append(f"{md}: broken relative link {target!r}")

    for match in BACKTICK_PATH.finditer(text):
        mention = match.group(1).rstrip("/")
        # Mentions may use <placeholders> or globs; only literal paths are
        # checkable.
        if any(c in mention for c in "<>*"):
            continue
        # Docs refer to built binaries (`tools/oiraidctl`) and to
        # extension-less module pairs (`util/trace`); accept a mention when
        # the path or a source file it names exists.
        candidates = [mention, mention + ".cpp", mention + ".hpp"]
        if not any((REPO_ROOT / c).exists() for c in candidates):
            errors.append(f"{md}: backticked path {mention!r} does not exist")

    return errors


def main(argv: list[str]) -> int:
    files = [Path(a) for a in argv[1:]] or [REPO_ROOT / f for f in DEFAULT_FILES]
    errors = []
    for md in files:
        if not md.exists():
            errors.append(f"{md}: file not found")
            continue
        errors.extend(check_file(md))
    for line in errors:
        print(line, file=sys.stderr)
    print(f"checked {len(files)} files: "
          f"{'OK' if not errors else f'{len(errors)} broken link(s)'}")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
