#!/usr/bin/env python3
"""Compare two BENCH_<name>.json files (docs/BENCH_JSON.md, schema v2).

Usage:
    bench_compare.py baseline.json current.json [--threshold 0.05]
                     [--ignore REGEX]... [--keep-timing]

Every (geometry, metric) record in the baseline must exist in the current
file, and its value must lie within ``--threshold`` relative deviation of
the baseline value (direction-agnostic: estimates drifting *down* can be as
wrong as drifting up for reliability numbers). Exit code 1 lists every
violation; 0 means the current run is compatible with the baseline.

Wall-clock metrics (``*_wall_seconds``, ``*_seconds``, ``*_per_second``)
are ignored by default -- they measure the host, not the code under test.
Pass ``--keep-timing`` to include them, or add ``--ignore`` regexes for
further metrics (matched against ``geometry/metric``).

Metrics present only in the current file are reported informationally and
never fail the comparison: new code may add metrics, but silently dropping
one is treated as a regression.

No dependencies beyond the standard library.
"""

import argparse
import json
import re
import sys
from pathlib import Path

# Host-speed metrics: excluded unless --keep-timing.
TIMING_PATTERNS = [
    r"_wall_seconds$",
    r"_seconds$",
    r"_per_second$",
]


def load_records(path: Path) -> dict[tuple[str, str], float | None]:
    """Parse a schema-v2 bench file into {(geometry, metric): value}."""
    try:
        doc = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as err:
        sys.exit(f"error: cannot read {path}: {err}")
    version = doc.get("schema_version", 1)
    if version > 2:
        sys.exit(f"error: {path}: unsupported schema_version {version}")
    records: dict[tuple[str, str], float | None] = {}
    for rec in doc.get("results", []):
        key = (rec["geometry"], rec["metric"])
        records[key] = rec["value"]  # null for non-finite values
    return records


def relative_deviation(base: float, cur: float) -> float:
    scale = max(abs(base), abs(cur), 1e-300)
    return abs(cur - base) / scale


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", type=Path)
    parser.add_argument("current", type=Path)
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.05,
        help="max relative deviation per metric (default: %(default)s)",
    )
    parser.add_argument(
        "--ignore",
        action="append",
        default=[],
        metavar="REGEX",
        help="skip metrics whose 'geometry/metric' matches (repeatable)",
    )
    parser.add_argument(
        "--keep-timing",
        action="store_true",
        help="also compare wall-clock / throughput metrics",
    )
    args = parser.parse_args()
    if args.threshold < 0:
        parser.error("--threshold must be non-negative")

    ignore = list(args.ignore)
    if not args.keep_timing:
        ignore += TIMING_PATTERNS
    ignore_res = [re.compile(pattern) for pattern in ignore]

    base = load_records(args.baseline)
    cur = load_records(args.current)

    failures: list[str] = []
    compared = skipped = 0
    for (geometry, metric), base_value in sorted(base.items()):
        label = f"{geometry}/{metric}"
        if any(rx.search(label) for rx in ignore_res):
            skipped += 1
            continue
        if (geometry, metric) not in cur:
            failures.append(f"MISSING  {label} (baseline {base_value})")
            continue
        cur_value = cur[(geometry, metric)]
        compared += 1
        if base_value is None or cur_value is None:
            # null encodes inf/nan (docs/BENCH_JSON.md); both-null is a match.
            if base_value is not cur_value:
                failures.append(
                    f"CHANGED  {label}: {base_value} -> {cur_value}"
                )
            continue
        deviation = relative_deviation(base_value, cur_value)
        if deviation > args.threshold:
            failures.append(
                f"DEVIATES {label}: {base_value:.6g} -> {cur_value:.6g} "
                f"({deviation:+.1%} > {args.threshold:.1%})"
            )

    new_metrics = sorted(set(cur) - set(base))
    if new_metrics:
        print(f"note: {len(new_metrics)} metric(s) only in current "
              "(not compared):")
        for geometry, metric in new_metrics[:10]:
            print(f"  NEW      {geometry}/{metric}")
        if len(new_metrics) > 10:
            print(f"  ... and {len(new_metrics) - 10} more")

    print(f"compared {compared} metric(s), skipped {skipped} "
          f"(timing/ignored), threshold {args.threshold:.1%}")
    if failures:
        print(f"{len(failures)} regression(s):", file=sys.stderr)
        for line in failures:
            print(f"  {line}", file=sys.stderr)
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
