// oiraidd -- serve an OI-RAID array's real bytes over loopback TCP.
//
//   oiraidd --dir /var/tmp/array0 --v 7 --k 3 --m 3 --height 6 --strip-bytes 4096
//       create a fresh array (one backing file per disk + double-buffered
//       superblocks) and serve it; if the directory already holds an array,
//       the layout flags are ignored and the persisted state is resumed --
//       including a half-finished rebuild, which continues from its
//       watermark.
//
// Flags:
//   --dir DIR           array directory (required)
//   --v/--k/--m/--height/--no-skew   layout for a fresh array (defaults 7/3/3/6)
//   --superblock FILE   fresh-array layout from a v1 superblock file instead
//   --strip-bytes N     strip size for a fresh array (default 4096)
//   --port N            TCP port on 127.0.0.1 (default 0 = ephemeral)
//   --port-file FILE    write the bound port (scripts wait for this file)
//   --client-mbps X     token-bucket cap on client I/O (0 = unthrottled)
//   --rebuild-mbps X    token-bucket cap on rebuild I/O (0 = unthrottled)
//   --rebuild-batch N   plan steps per rebuild batch (default 8)
//   --request-threads N worker threads executing client requests against the
//                       striped array (default 0 = min(cores, 8))
//
// Tracing / slow-request capture (see docs/OBSERVABILITY.md):
//   --slow-request-us X capture requests slower than X us end-to-end: count
//                       them, log one structured stderr line each, keep them
//                       for `oiraidctl profile` (0 = off)
//   --slow-p99x X       also capture requests slower than X times the
//                       trailing p99 (0 = off). Either flag set narrows span
//                       emission to just the captured tails, so a bounded
//                       --trace-ring retains slow requests, not recent ones.
//
// QoS (see docs/QOS.md):
//   --tenants "SPEC;SPEC;..."   declare tenants for per-tenant accounting;
//                       each SPEC is comma-separated key=value pairs, e.g.
//                       "name=lat,arrival=poisson,rate=400,read=0.95,
//                        slo-p99-us=2000". The daemon only uses name/id/
//                       slo-p99-us (the arrival/access keys drive bench
//                       clients), but accepts full specs so one string
//                       serves both sides.
//   --qos-controller    replace the static rebuild token bucket with the
//                       AIMD RebuildController (--rebuild-mbps then ignored)
//   --qos-min-mbps X    controller rate floor (default 1)
//   --qos-max-mbps X    controller rate ceiling (default 1024)
//   --qos-initial-mbps X  controller starting rate (default 256)
//   --qos-increase-mbps X additive increase per interval (default 32)
//   --qos-decrease X    multiplicative decrease on SLO violation (default 0.5)
//   --qos-headroom X    increase only while p99 <= X * slo (default 0.8)
//   --qos-interval-ms N control interval (default 100)
//
// plus the standard observability flags (--metrics-port, --metrics-stream-out,
// --trace-out, ...; see util/observability.hpp). Watch a live rebuild with
// `oiraidctl top --port <metrics-port>`: the `rebuild.watermark` gauge climbs
// while `server.io.*` counters keep moving.
//
// The daemon runs until `oiraidctl stop --port <port>` or SIGINT/SIGTERM;
// shutdown syncs data and superblock.
#include <csignal>
#include <fstream>
#include <iostream>

#include "bibd/registry.hpp"
#include "layout/superblock.hpp"
#include "server/block_server.hpp"
#include "server/persistent_array.hpp"
#include "util/flags.hpp"
#include "util/observability.hpp"
#include "workload/tenant.hpp"

namespace {

using namespace oi;

server::BlockServer* g_server = nullptr;

void handle_signal(int) {
  if (g_server != nullptr) g_server->stop();
}

layout::OiRaidLayout layout_from_flags(const Flags& flags) {
  if (flags.has("superblock")) {
    std::ifstream file(flags.get_string("superblock", ""));
    if (!file) throw std::invalid_argument("cannot open superblock file");
    return layout::load_superblock(file);
  }
  const auto v = static_cast<std::size_t>(flags.get_int("v", 7));
  const auto k = static_cast<std::size_t>(flags.get_int("k", 3));
  const auto m = static_cast<std::size_t>(flags.get_int("m", 3));
  const auto height = static_cast<std::size_t>(flags.get_int("height", 6));
  const bool skew = !flags.get_bool("no-skew", false);
  auto design = bibd::find_design(v, k);
  if (!design) {
    throw std::invalid_argument("no (v=" + std::to_string(v) + ", k=" +
                                std::to_string(k) + ", 1) design is constructible");
  }
  return layout::OiRaidLayout({std::move(*design), m, height, skew});
}

int run(const Flags& flags) {
  const std::string dir = flags.get_string("dir", "");
  if (dir.empty()) {
    std::cerr << "oiraidd: --dir DIR is required\n";
    return 2;
  }

  std::unique_ptr<server::PersistentArray> array;
  if (server::PersistentArray::exists(dir)) {
    array = std::make_unique<server::PersistentArray>(dir);
    std::cout << "oiraidd: opened " << dir << " ("
              << array->layout().name() << ", epoch "
              << array->state().epoch << ")\n";
    if (!array->state().failed_disks.empty()) {
      std::cout << "oiraidd: resuming rebuild at watermark "
                << array->state().rebuild_watermark << "\n";
    }
  } else {
    const auto strip_bytes =
        static_cast<std::size_t>(flags.get_int("strip-bytes", 4096));
    array = std::make_unique<server::PersistentArray>(dir, layout_from_flags(flags),
                                                      strip_bytes);
    std::cout << "oiraidd: created " << dir << " ("
              << array->layout().name() << ", " << strip_bytes
              << "-byte strips)\n";
  }

  server::BlockServerConfig config;
  config.port = static_cast<std::uint16_t>(flags.get_int("port", 0));
  config.client_bytes_per_second = flags.get_double("client-mbps", 0.0) * 1e6;
  config.rebuild_bytes_per_second = flags.get_double("rebuild-mbps", 0.0) * 1e6;
  config.rebuild_batch_steps =
      static_cast<std::size_t>(flags.get_int("rebuild-batch", 8));
  config.request_threads =
      static_cast<std::size_t>(flags.get_int("request-threads", 0));
  config.slow_request_us = flags.get_double("slow-request-us", 0.0);
  config.slow_p99_multiple = flags.get_double("slow-p99x", 0.0);
  if (flags.has("tenants")) {
    for (const auto& spec :
         workload::parse_tenant_list(flags.get_string("tenants", ""))) {
      config.tenants.push_back(
          server::TenantConfig{spec.id, spec.name, spec.slo.p99_us});
    }
  }
  config.qos_controller = flags.get_bool("qos-controller", false);
  constexpr double kMiBps = 1024.0 * 1024.0;
  config.controller.min_bytes_per_second =
      flags.get_double("qos-min-mbps", 1.0) * kMiBps;
  config.controller.max_bytes_per_second =
      flags.get_double("qos-max-mbps", 1024.0) * kMiBps;
  config.controller.initial_bytes_per_second =
      flags.get_double("qos-initial-mbps", 256.0) * kMiBps;
  config.controller.increase_bytes_per_second =
      flags.get_double("qos-increase-mbps", 32.0) * kMiBps;
  config.controller.decrease_factor = flags.get_double("qos-decrease", 0.5);
  config.controller.headroom = flags.get_double("qos-headroom", 0.8);
  config.controller.interval_ms =
      static_cast<int>(flags.get_int("qos-interval-ms", 100));
  server::BlockServer server(*array, config);

  const std::string port_file = flags.get_string("port-file", "");
  if (!port_file.empty()) {
    std::ofstream out(port_file);
    out << server.port() << "\n";
  }
  std::cout << "oiraidd: serving " << array->array().capacity_bytes()
            << " bytes on " << config.host << ":" << server.port() << std::endl;

  g_server = &server;
  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);
  server.wait();
  g_server = nullptr;
  std::cout << "oiraidd: shutting down\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    // Flags' ctor skips argv[0] (the program name) itself.
    const Flags flags(argc, argv);
    const obs::Session obs(flags);
    // Announce the resolved exporter port (scripts pass --metrics-port 0 and
    // scrape /trace and /metrics off whatever the kernel picked).
    if (obs.exporter_port() != 0) {
      std::cout << "oiraidd: metrics exporter on 127.0.0.1:"
                << obs.exporter_port() << std::endl;
    }
    const int code = run(flags);
    for (const std::string& name : flags.unused()) {
      std::cerr << "warning: unused flag --" << name << "\n";
    }
    return code;
  } catch (const std::exception& error) {
    std::cerr << "oiraidd: " << error.what() << "\n";
    return 1;
  }
}
