// oiraidctl -- command-line front end for the oi-raid library.
//
//   oiraidctl designs   --k 3 --vmax 60
//       list constructible (v, k, 1) designs and the arrays they induce
//   oiraidctl plan      --v 7 --k 3 --m 3 --height 6
//       geometry summary: disks, capacity, overhead, tolerance, update cost
//   oiraidctl map       --v 7 --k 3 --m 3 --height 2
//       physical strip map (roles and block ids per disk/offset)
//   oiraidctl recover   --v 7 --k 3 --m 3 --height 6 --fail 0,1,2
//       recovery plan statistics: per-disk reads, balance, analytic bound
//   oiraidctl simulate  --v 7 --k 3 --m 3 --height 30 --fail 0
//       simulated rebuild on the disk model (optional foreground load)
//   oiraidctl tolerance --v 7 --k 3 --m 3 --height 2 --failures 4
//       survival fraction of f-failure patterns (peel + exact)
//   oiraidctl mttdl     --disks 21 --mttf-hours 1.2e6 --rebuild-hours 12
//       Markov MTTDL for a t-fault-tolerant array
//   oiraidctl mc        --v 7 --k 3 --m 3 --height 2 --mc-trials 100000 --mc-bias 16
//       structural Monte-Carlo P(loss): layout-aware trials against the
//       actual recovery procedure; --mc-bias > 1 turns on importance
//       sampling (failure biasing) for rare-event estimates
//   oiraidctl export    --v 7 --k 3 --m 3 --height 6
//       print the superblock (restorable layout description) to stdout
//   oiraidctl top       --port 9464 | --stream metrics.jsonl
//       live metrics console: polls a running process's /metrics exporter
//       (--metrics-port on the producer) or tails its --metrics-stream-out
//       JSONL file, and redraws a metric table plus a Monte-Carlo progress
//       summary every --interval-ms (default 1000). --count N stops after N
//       refreshes; --no-clear appends instead of redrawing (for logs/CI)
//
// Client commands against a running `oiraidd` daemon (all take --port PORT
// and optionally --host, default 127.0.0.1):
//
//   oiraidctl ping      --port 9500
//   oiraidctl status    --port 9500
//       daemon state as "key value" lines (failed disks, rebuild watermark,
//       hottest lock domains, slow-request count)
//   oiraidctl profile   --port 9500
//       request-profile report: slow-request captures (per-stage breakdown),
//       trailing p99, and the lock-domain contention table (see
//       docs/OBSERVABILITY.md, "Request tracing & profiling")
//   oiraidctl read      --port 9500 --offset 0 --length 64 [--out FILE]
//       read bytes; hex to stdout, or raw bytes to --out FILE
//   oiraidctl write     --port 9500 --offset 0 --data STR | --in FILE |
//                       --fill BYTE --length N
//       write bytes through the parity path
//   (read/write also take --tenant N to tag requests for the daemon's
//   per-tenant QoS accounting; see docs/QOS.md. All client commands take
//   --trace to stamp each request with a fresh trace id -- printed on
//   stderr -- which the daemon echoes in its spans, slow-request log lines
//   and histogram exemplars; see docs/OBSERVABILITY.md)
//   oiraidctl fail      --port 9500 --disk 4
//       durably fail a disk; the daemon rebuilds it online
//   oiraidctl stop      --port 9500
//
// Layout-taking commands also accept --superblock <file> instead of
// --v/--k/--m/--height. Every command accepts --gf-kernel
// <scalar|word64|pshufb|auto> to force a GF(256) codec kernel variant
// (default: OI_GF_KERNEL env var, else the best the CPU supports).
//
// Every command prints its inputs so output files are self-describing.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <thread>

#include "bibd/registry.hpp"
#include "codes/kernels.hpp"
#include "core/fault_analysis.hpp"
#include "layout/analysis.hpp"
#include "layout/oi_raid.hpp"
#include "layout/superblock.hpp"
#include "reliability/models.hpp"
#include "reliability/monte_carlo.hpp"
#include "server/protocol.hpp"
#include "sim/rebuild.hpp"
#include "util/flags.hpp"
#include "util/http_exporter.hpp"
#include "util/observability.hpp"
#include "util/stats.hpp"
#include "util/telemetry_client.hpp"
#include "util/table.hpp"
#include "util/trace.hpp"
#include "util/units.hpp"

namespace {

using namespace oi;

int usage() {
  std::cerr << "usage: oiraidctl <designs|plan|map|recover|simulate|tolerance|mttdl|mc|export|top"
               "|ping|status|profile|read|write|fail|stop> "
               "[--flags]\n       see the header of tools/oiraidctl.cpp for details\n";
  return 2;
}

layout::OiRaidLayout layout_from_flags(const Flags& flags) {
  if (flags.has("superblock")) {
    std::ifstream file(flags.get_string("superblock", ""));
    if (!file) throw std::invalid_argument("cannot open superblock file");
    return layout::load_superblock(file);
  }
  const auto v = static_cast<std::size_t>(flags.get_int("v", 7));
  const auto k = static_cast<std::size_t>(flags.get_int("k", 3));
  const auto m = static_cast<std::size_t>(flags.get_int("m", 3));
  const auto height = static_cast<std::size_t>(flags.get_int("height", 6));
  const bool skew = !flags.get_bool("no-skew", false);
  auto design = bibd::find_design(v, k);
  if (!design) {
    throw std::invalid_argument("no (v=" + std::to_string(v) + ", k=" + std::to_string(k) +
                                ", 1) design is constructible; try `oiraidctl designs`");
  }
  return layout::OiRaidLayout({std::move(*design), m, height, skew});
}

int cmd_designs(const Flags& flags) {
  const auto k = static_cast<std::size_t>(flags.get_int("k", 3));
  const auto vmax = static_cast<std::size_t>(flags.get_int("vmax", 60));
  const auto m = static_cast<std::size_t>(flags.get_int("m", k));
  Table table({"v", "k", "origin", "blocks", "r", "disks (m=" + std::to_string(m) + ")",
               "data fraction"});
  for (const auto& [v, kk] : bibd::known_parameters(vmax, k)) {
    const auto design = bibd::find_design(v, kk);
    table.row().cell(v).cell(kk).cell(design->origin).cell(design->b())
        .cell(design->r()).cell(v * m)
        .cell(layout::oi_raid_data_fraction(kk, m), 4);
  }
  table.print(std::cout);
  return 0;
}

int cmd_plan(const Flags& flags) {
  const auto layout = layout_from_flags(flags);
  const auto& d = layout.design();
  std::cout << "layout:            " << layout.name() << "\n"
            << "outer design:      " << d.origin << "  (v=" << d.v << ", k=" << d.k
            << ", b=" << d.b() << ", r=" << d.r() << ")\n"
            << "disks:             " << layout.disks() << "  (" << layout.groups()
            << " groups x " << layout.disks_per_group() << ")\n"
            << "strips per disk:   " << layout.strips_per_disk() << "\n"
            << "logical capacity:  " << layout.data_strips() << " strips\n"
            << "data fraction:     " << layout.data_fraction() << "\n"
            << "fault tolerance:   " << layout.fault_tolerance() << " disks (guaranteed)\n"
            << "small-write cost:  " << layout.small_write_plan(0).parity_updates
            << " parity updates (optimal for 3-ft: 3)\n";
  return 0;
}

int cmd_map(const Flags& flags) {
  const auto layout = layout_from_flags(flags);
  const auto blocks_of = bibd::point_to_blocks(layout.design());
  std::cout << layout.name() << " physical map (P = inner parity, Q<b>/d<b> = outer "
               "parity/data of block b):\n     ";
  for (std::size_t d = 0; d < layout.disks(); ++d) {
    std::cout << "d" << d << (d < 10 ? "   " : "  ");
  }
  std::cout << "\n";
  for (std::size_t o = 0; o < layout.strips_per_disk(); ++o) {
    std::cout << "o" << o << (o < 10 ? "   " : "  ");
    for (std::size_t d = 0; d < layout.disks(); ++d) {
      const auto info = layout.inspect({d, o});
      std::string cell;
      if (info.role == layout::StripRole::kParity) {
        cell = "P";
      } else {
        const std::size_t group = d / layout.disks_per_group();
        const std::size_t region = o / layout.region_height();
        const std::size_t block = blocks_of[group][region];
        cell = (info.role == layout::StripRole::kOuterParity ? "Q" : "d") +
               std::to_string(block);
      }
      cell.resize(5, ' ');
      std::cout << cell;
    }
    std::cout << "\n";
  }
  return 0;
}

int cmd_recover(const Flags& flags) {
  const auto layout = layout_from_flags(flags);
  const auto failed = flags.get_size_list("fail");
  if (failed.empty()) {
    std::cerr << "recover: --fail d0,d1,... is required\n";
    return 2;
  }
  // Planning is host-side work (no simulation), so the trace shows it as a
  // wall-clock span rather than per-disk lanes.
  const trace::WallSpan span("recovery_plan");
  const auto plan = layout.recovery_plan(failed);
  if (!plan) {
    std::cout << "pattern is UNRECOVERABLE (beyond iterative decoding)\n";
    return 1;
  }
  const bool dedicated = flags.get_string("spare", "distributed") == "dedicated";
  const auto load = layout::compute_rebuild_load(
      layout, failed, *plan,
      dedicated ? layout::SparePolicy::kDedicatedSpare
                : layout::SparePolicy::kDistributedSpare);
  std::cout << "strips to rebuild: " << plan->size() << "\n";
  double total_reads = 0.0;
  for (double r : load.reads) total_reads += r;
  std::cout << "total strip reads: " << total_reads << "\n"
            << "read imbalance (max/mean over active disks): "
            << layout::read_imbalance(load, failed) << "\n";
  sim::DiskParams disk;
  std::cout << "bandwidth-bound rebuild time (4 MiB strips, "
            << format_bandwidth(disk.bandwidth) << "): "
            << format_seconds(layout::rebuild_time_lower_bound(
                   load, disk.transfer_seconds(), disk.transfer_seconds()))
            << "\n";
  if (flags.get_bool("per-disk", false)) {
    Table table({"disk", "reads", "writes"});
    for (std::size_t d = 0; d < load.writes.size(); ++d) {
      table.row().cell(d).cell(d < load.reads.size() ? load.reads[d] : 0.0, 0)
          .cell(load.writes[d], 0);
    }
    table.print(std::cout);
  }
  return 0;
}

int cmd_simulate(const Flags& flags) {
  const auto layout = layout_from_flags(flags);
  const auto failed = flags.get_size_list("fail");
  sim::SimConfig config;
  config.disk.strip_bytes =
      static_cast<std::size_t>(flags.get_int("strip-mib", 4)) * kMiB;
  // Effectively unbounded rebuild window: the miniature arrays here stand in
  // for proportionally provisioned rebuilders; the window-size sensitivity
  // itself is covered by tests and E9.
  config.max_inflight_steps = 1'000'000;
  config.spare = flags.get_string("spare", "distributed") == "dedicated"
                     ? layout::SparePolicy::kDedicatedSpare
                     : layout::SparePolicy::kDistributedSpare;
  config.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  config.copy_back = flags.get_bool("copy-back", false);
  // --slow "disk:factor" fail-slow injection, e.g. --slow 4 --slow-factor 10
  if (flags.has("slow")) {
    config.slow_disks[static_cast<std::size_t>(flags.get_int("slow", 0))] =
        flags.get_double("slow-factor", 10.0);
  }
  const double rate = flags.get_double("rate", 0.0);
  if (rate > 0.0) config.foreground = sim::ForegroundConfig{{}, rate};
  if (failed.empty() && rate <= 0.0) {
    std::cerr << "simulate: provide --fail d0,... and/or --rate req_per_s\n";
    return 2;
  }
  config.healthy_horizon_seconds = flags.get_double("horizon", 10.0);

  const auto result = sim::simulate(layout, failed, config);
  std::cout << "rebuild time:  " << format_seconds(result.rebuild_seconds) << "\n"
            << "rebuild I/O:   " << result.rebuild_disk_reads << " reads, "
            << result.rebuild_disk_writes << " writes\n"
            << "max disk util: " << result.max_disk_utilization() << "\n";
  if (result.copy_back_seconds > 0.0) {
    std::cout << "copy-back:     " << format_seconds(result.copy_back_seconds) << "\n";
  }
  if (!result.foreground_latencies.empty()) {
    RunningStats stats;
    for (double x : result.foreground_latencies) stats.add(x);
    std::cout << "foreground:    " << result.foreground_completed << " ops, mean "
              << format_seconds(stats.mean()) << ", p95 "
              << format_seconds(percentile(result.foreground_latencies, 0.95)) << "\n";
  }
  return 0;
}

int cmd_tolerance(const Flags& flags) {
  const auto layout = layout_from_flags(flags);
  const auto f_max = static_cast<std::size_t>(flags.get_int("failures", 4));
  const auto budget = static_cast<std::size_t>(flags.get_int("patterns", 2000));
  Rng rng(static_cast<std::uint64_t>(flags.get_int("seed", 1)));
  Table table({"failures", "patterns", "mode", "peel frac", "exact frac"});
  for (std::size_t f = 1; f <= f_max; ++f) {
    const auto s = core::sweep_failure_patterns(layout, f, budget, rng);
    table.row().cell(f).cell(s.patterns_tested)
        .cell(s.exhaustive ? "exhaustive" : "sampled").cell(s.peel_fraction(), 4)
        .cell(s.exact_fraction(), 4);
  }
  table.print(std::cout);
  return 0;
}

int cmd_export(const Flags& flags) {
  const auto layout = layout_from_flags(flags);
  layout::save_superblock(layout, std::cout);
  return 0;
}

int cmd_mttdl(const Flags& flags) {
  const auto disks = static_cast<std::size_t>(flags.get_int("disks", 21));
  reliability::DiskReliabilityParams params;
  params.mttf_hours = flags.get_double("mttf-hours", 1.2e6);
  params.rebuild_hours = flags.get_double("rebuild-hours", 12.0);
  const auto tolerance = static_cast<std::size_t>(flags.get_int("tolerance", 3));
  const double fatal = flags.get_double("fatal-beyond", 1.0);
  const double mttdl = reliability::mttdl_t_tolerant(disks, tolerance, params, fatal);
  std::cout << "disks=" << disks << " tolerance=" << tolerance
            << " mttf=" << format_seconds(params.mttf_hours * 3600)
            << " rebuild=" << format_seconds(params.rebuild_hours * 3600) << "\n"
            << "MTTDL: " << format_seconds(mttdl * 3600) << "\n"
            << "P(loss in 10y): "
            << reliability::loss_probability_t_tolerant(disks, tolerance, params,
                                                        10 * 24 * 365.25, fatal)
            << "\n";
  return 0;
}

int cmd_mc(const Flags& flags) {
  const auto layout = layout_from_flags(flags);
  reliability::MonteCarloConfig base;
  base.mttf_hours = flags.get_double("mttf-hours", base.mttf_hours);
  base.rebuild_hours = flags.get_double("rebuild-hours", base.rebuild_hours);
  base.mission_hours =
      flags.get_double("mission-years", 10.0) * 24.0 * 365.25;
  base.trials = flags.get_mc_trials(100'000);
  base.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  base.weibull_shape = flags.get_double("weibull-shape", 1.0);
  base.lse_probability_per_repair = flags.get_double("lse-prob", 0.0);
  base.disks_per_domain =
      static_cast<std::size_t>(flags.get_int("disks-per-domain", 0));
  base.domain_mttf_hours = flags.get_double("domain-mttf-hours", 0.0);
  base.threads = flags.get_threads(0);
  const double bias = flags.get_mc_bias(1.0);

  reliability::MonteCarloResult result;
  if (bias > 1.0) {
    reliability::BiasedMonteCarloConfig biased;
    static_cast<reliability::MonteCarloConfig&>(biased) = base;
    biased.failure_bias = bias;
    result = reliability::monte_carlo_reliability(layout, biased);
  } else {
    result = reliability::monte_carlo_reliability(layout, base);
  }

  std::cout << "layout:          " << layout.name() << "  (" << layout.disks()
            << " disks, tolerance " << layout.fault_tolerance() << ")\n"
            << "mission:         " << format_seconds(base.mission_hours * 3600)
            << "  mttf " << format_seconds(base.mttf_hours * 3600) << "  rebuild "
            << format_seconds(base.rebuild_hours * 3600) << "\n"
            << "estimator:       " << (bias > 1.0 ? "failure-biased b=" : "plain");
  if (bias > 1.0) std::cout << bias;
  std::cout << "  (" << result.trials << " trials)\n"
            << "losses:          " << result.losses << "\n"
            << "P(loss):         " << result.loss_probability << "\n";
  if (result.losses == 0 && bias > 1.0) {
    // The weighted estimator has no honest interval without any loss trial.
    std::cout << "95% interval:    n/a (no losses observed; raise --mc-trials "
                 "or adjust --mc-bias)\n";
  } else {
    std::cout << "95% interval:    [" << result.ci95_lo << ", "
              << result.ci95_hi << "]"
              << (result.losses == 0 ? "  (no losses: Wilson upper bound)" : "")
              << "\n";
  }
  std::cout
            << "ESS:             " << result.ess << "\n"
            << "relative error:  " << result.relative_error << "\n"
            << "oracle traffic:  " << result.oracle_hits << " hits / "
            << result.oracle_misses << " decodes\n";
  return 0;
}

// ---------------------------------------------------------------- top ----

std::string top_value(double v) {
  std::ostringstream os;
  if (!std::isfinite(v)) {
    os << (std::isnan(v) ? "nan" : (v > 0 ? "inf" : "-inf"));
  } else if (v == std::floor(v) && std::abs(v) < 1e15) {
    os.precision(0);
    os << std::fixed << v;
  } else {
    os.precision(4);
    os << v;
  }
  return os.str();
}

using ExemplarMap = std::map<std::string, std::vector<telemetry::ExemplarEntry>>;

// Tail exemplars for one histogram: the most recent request ids that landed
// in its slowest occupied buckets, newest bucket edge first. One line per
// histogram keeps the section compact; `oiraidctl profile` has the full
// per-request breakdown for any id shown here.
void render_exemplars(std::ostream& out, const ExemplarMap& exemplars,
                      const std::string& dotted, const std::string& label) {
  const auto it = exemplars.find(dotted);
  if (it == exemplars.end() || it->second.empty()) return;
  out << "    " << label << " tail ids:";
  constexpr std::size_t kShow = 3;
  const auto& entries = it->second;
  const std::size_t first =
      entries.size() > kShow ? entries.size() - kShow : 0;
  for (std::size_t i = entries.size(); i-- > first;) {
    out << "  id=" << entries[i].id << " <=" << top_value(entries[i].upper)
        << "us";
  }
  out << "\n";
}

void render_top(std::ostream& out, const telemetry::MetricMap& values,
                const telemetry::HistogramMap& histograms,
                const ExemplarMap& exemplars, const std::string& source) {
  out << "oiraidctl top -- " << source << "\n";

  // Curated Monte-Carlo campaign summary when one is (or was) running.
  const auto pct =
      telemetry::find_metric(values, "reliability.mc.percent_complete");
  if (pct.has_value()) {
    const double frac = std::clamp(*pct / 100.0, 0.0, 1.0);
    constexpr int kBar = 40;
    const int filled = static_cast<int>(frac * kBar + 0.5);
    out << "\nmc campaign  [" << std::string(filled, '#')
        << std::string(kBar - filled, '.') << "] " << top_value(*pct) << "%\n";
    const auto row = [&](const char* label, const char* metric,
                         bool seconds = false) {
      const auto v = telemetry::find_metric(values, metric);
      if (!v.has_value()) return;
      out << "  " << label
          << (seconds && std::isfinite(*v) ? format_seconds(*v)
                                           : top_value(*v))
          << "\n";
    };
    row("trials done:    ", "reliability.mc.trials_done");
    row("trials/s:       ", "reliability.mc.trials_per_second");
    row("eta:            ", "reliability.mc.eta_seconds", /*seconds=*/true);
    row("losses seen:    ", "reliability.mc.losses_seen");
    row("ESS:            ", "reliability.mc.ess");
    row("relative error: ", "reliability.mc.relative_error");
  }

  // Curated data-plane summary when the producer is an oiraidd: request
  // traffic plus per-op service latency. Columns: ops = requests recorded,
  // mean/p50/p99/p999 in microseconds; the quantiles interpolate the full
  // bucket series (see docs/OBSERVABILITY.md, "top columns"), so they need a
  // histogram source -- count/sum alone only yield the mean.
  const auto requests = telemetry::find_metric(values, "server.net.requests");
  if (requests.has_value()) {
    out << "\nserver requests: " << top_value(*requests);
    const auto counter = [&](const char* label, const char* metric) {
      const auto v = telemetry::find_metric(values, metric);
      if (v.has_value() && *v > 0) out << "  " << label << " " << top_value(*v);
    };
    counter("errors:", "server.net.errors");
    counter("disconnects:", "server.net.disconnects");
    out << "\n";
    const auto latency_row = [&](const std::string& label,
                                 const std::string& base) {
      const auto count = telemetry::find_metric(values, base + ".count");
      const auto sum = telemetry::find_metric(values, base + ".sum");
      if (!count.has_value() || !sum.has_value() || *count <= 0) return false;
      const std::string head = label + ":";
      out << "  " << head
          << std::string(head.size() < 10 ? 10 - head.size() : 1, ' ')
          << top_value(*count) << " ops, mean " << top_value(*sum / *count)
          << " us";
      if (const auto hist = telemetry::find_histogram(histograms, base)) {
        out << ", p50 " << top_value(hist->quantile(0.50)) << " us, p99 "
            << top_value(hist->quantile(0.99)) << " us, p999 "
            << top_value(hist->quantile(0.999)) << " us";
      }
      out << "\n";
      return true;
    };
    for (const char* op : {"read", "write", "status"}) {
      const std::string base = std::string("server.req.") + op + ".latency_us";
      if (latency_row(op, base)) render_exemplars(out, exemplars, base, op);
    }

    // Stage breakdown (decode/queue/lock/io/codec/reply) when the daemon was
    // run with metrics on; exemplar ids link tail buckets back to requests.
    bool wrote_stages = false;
    for (const char* stage :
         {"decode", "queue", "lock", "io", "codec", "reply"}) {
      const std::string base =
          std::string("server.stage.") + stage + ".latency_us";
      const auto count = telemetry::find_metric(values, base + ".count");
      if (!count.has_value() || *count <= 0) continue;
      if (!wrote_stages) {
        out << "stages\n";
        wrote_stages = true;
      }
      latency_row(std::string("  ") + stage, base);
      render_exemplars(out, exemplars, base, stage);
    }

    // Per-tenant QoS section (daemons started with --tenants). Tenants are
    // discovered from their latency histograms; slo/violated ride along as
    // gauges, and the controller's live rebuild rate heads the section.
    const auto rate = telemetry::find_metric(
        values, "server.qos.rebuild_rate_bytes_per_second");
    // Discover tenant ids from the histogram keys in either keying
    // (`server.tenant.<id>.latency_us` dotted, `oi_server_tenant_<id>_...`
    // mangled); std::set keeps the section ordered and deduplicated.
    std::set<long> tenant_ids;
    for (const auto& [key, hist] : histograms) {
      for (const std::string prefix :
           {std::string("server.tenant."), std::string("oi_server_tenant_")}) {
        if (key.size() > prefix.size() &&
            key.compare(0, prefix.size(), prefix) == 0) {
          tenant_ids.insert(std::strtol(key.c_str() + prefix.size(), nullptr, 10));
        }
      }
    }
    bool wrote_header = false;
    for (const long id : tenant_ids) {
      const std::string base =
          "server.tenant." + std::to_string(id) + ".latency_us";
      if (!telemetry::find_histogram(histograms, base).has_value() &&
          !telemetry::find_metric(values, base + ".count").has_value()) {
        continue;
      }
      if (!wrote_header) {
        out << "tenants";
        if (rate.has_value() && *rate > 0) {
          out << "  (rebuild rate " << format_bandwidth(*rate);
          const auto violations =
              telemetry::find_metric(values, "server.qos.slo_violations");
          if (violations.has_value() && *violations > 0) {
            out << ", " << top_value(*violations) << " slo violations";
          }
          out << ")";
        }
        out << "\n";
        wrote_header = true;
      }
      if (!latency_row("t" + std::to_string(id), base)) continue;
      const auto slo = telemetry::find_metric(
          values, "server.tenant." + std::to_string(id) + ".slo_p99_us");
      const auto violated = telemetry::find_metric(
          values, "server.tenant." + std::to_string(id) + ".slo_violated");
      if (slo.has_value() && *slo > 0) {
        out << "            slo p99<=" << top_value(*slo) << " us"
            << (violated.value_or(0.0) > 0 ? "  VIOLATED" : "") << "\n";
      }
    }
  }

  out << "\n";
  Table table({"metric", "value"});
  for (const auto& [name, value] : values) {
    table.row().cell(name).cell(top_value(value));
  }
  table.print(out);
}

int cmd_top(const Flags& flags) {
  const std::string stream = flags.get_string("stream", "");
  const bool use_http = flags.has("port");
  if (stream.empty() && !use_http) {
    std::cerr << "top: provide --port PORT (poll a /metrics exporter) or "
                 "--stream FILE (tail a --metrics-stream-out file)\n";
    return 2;
  }
  const std::string host = flags.get_string("host", "127.0.0.1");
  const std::int64_t port = flags.get_int("port", 0);
  if (use_http && (port < 1 || port > 65535)) {
    std::cerr << "top: --port must be in 1..65535\n";
    return 2;
  }
  const std::int64_t interval_ms = flags.get_int("interval-ms", 1000);
  const std::int64_t count = flags.get_int("count", 0);
  const bool clear = !flags.get_bool("no-clear", false);

  telemetry::StreamFollower follower(stream);
  for (std::int64_t i = 0; count == 0 || i < count; ++i) {
    if (i > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
    }
    telemetry::MetricMap values;
    telemetry::HistogramMap histograms;
    ExemplarMap exemplars;
    std::string source;
    if (use_http) {
      try {
        const std::string body = telemetry::http_get(
            host, static_cast<std::uint16_t>(port), "/metrics");
        values = telemetry::parse_prometheus_text(body);
        histograms = telemetry::parse_prometheus_histograms(body);
      } catch (const std::exception& error) {
        // The producer may not be up yet (or just exited); keep polling.
        std::cout << "oiraidctl top -- waiting for " << host << ":" << port
                  << "/metrics (" << error.what() << ")\n";
        continue;
      }
      try {
        // Exemplars (tail request ids) only live in the JSON snapshot; the
        // Prometheus text stays exemplar-free on purpose. Best-effort: an
        // older producer without /vars still gets the full table above.
        exemplars = telemetry::parse_vars_exemplars(telemetry::http_get(
            host, static_cast<std::uint16_t>(port), "/vars"));
      } catch (const std::exception&) {
      }
      source = host + ":" + std::to_string(port) + "/metrics";
    } else {
      follower.poll();
      values = follower.values();
      histograms = follower.histograms();
      std::ostringstream s;
      s << stream << "  (" << follower.records() << " records, t="
        << top_value(follower.last_t()) << "s)";
      source = s.str();
    }
    std::ostringstream frame;
    if (clear) frame << "\x1b[2J\x1b[H";  // redraw in place
    render_top(frame, values, histograms, exemplars, source);
    std::cout << frame.str() << std::flush;
  }
  return 0;
}

// ---------------------------------------------------- oiraidd client ----

server::Client daemon_client(const Flags& flags) {
  const std::int64_t port = flags.get_int("port", 0);
  if (port < 1 || port > 65535) {
    throw std::invalid_argument("--port PORT (1..65535) is required");
  }
  server::Client client(flags.get_string("host", "127.0.0.1"),
                        static_cast<std::uint16_t>(port));
  // --tenant N tags every request for per-tenant QoS accounting (0 =
  // untagged; ids beyond the daemon's --tenants list fall into the default
  // slot server-side).
  const std::int64_t tenant = flags.get_int("tenant", 0);
  if (tenant < 0 || tenant > 0xffff) {
    throw std::invalid_argument("--tenant must be in 0..65535");
  }
  client.set_tenant(static_cast<std::uint16_t>(tenant));
  // --trace: stamp every request with a client-unique trace id so this
  // invocation correlates with the daemon's stage spans and slow-request
  // captures end to end.
  if (flags.get_bool("trace", false)) client.set_tracing(true);
  return client;
}

/// After a traced exchange, tell the operator which id to look for in the
/// daemon's spans / slow log / exemplars (stderr, so --out piping stays clean).
void report_trace_id(const server::Client& client) {
  if (client.tracing() && client.last_trace_id() != 0) {
    std::cerr << "trace id " << client.last_trace_id() << "\n";
  }
}

int cmd_ping(const Flags& flags) {
  daemon_client(flags).ping();
  std::cout << "ok\n";
  return 0;
}

int cmd_status(const Flags& flags) {
  std::cout << daemon_client(flags).status();
  return 0;
}

int cmd_profile(const Flags& flags) {
  std::cout << daemon_client(flags).profile();
  return 0;
}

int cmd_read(const Flags& flags) {
  const auto offset = static_cast<std::uint64_t>(flags.get_int("offset", 0));
  const std::int64_t length = flags.get_int("length", -1);
  if (length < 0) {
    std::cerr << "read: --length N is required\n";
    return 2;
  }
  auto client = daemon_client(flags);
  const auto data = client.read(offset, static_cast<std::uint32_t>(length));
  report_trace_id(client);
  const std::string out_path = flags.get_string("out", "");
  if (!out_path.empty()) {
    std::ofstream out(out_path, std::ios::binary);
    if (!out) throw std::invalid_argument("cannot open --out file");
    out.write(reinterpret_cast<const char*>(data.data()),
              static_cast<std::streamsize>(data.size()));
    return 0;
  }
  static constexpr char kHex[] = "0123456789abcdef";
  std::string hex;
  hex.reserve(data.size() * 2);
  for (const std::uint8_t b : data) {
    hex.push_back(kHex[b >> 4]);
    hex.push_back(kHex[b & 0xF]);
  }
  std::cout << hex << "\n";
  return 0;
}

int cmd_write(const Flags& flags) {
  const auto offset = static_cast<std::uint64_t>(flags.get_int("offset", 0));
  std::vector<std::uint8_t> data;
  if (flags.has("data")) {
    const std::string text = flags.get_string("data", "");
    data.assign(text.begin(), text.end());
  } else if (flags.has("in")) {
    std::ifstream in(flags.get_string("in", ""), std::ios::binary);
    if (!in) throw std::invalid_argument("cannot open --in file");
    data.assign(std::istreambuf_iterator<char>(in),
                std::istreambuf_iterator<char>());
  } else if (flags.has("fill")) {
    const auto fill = static_cast<std::uint8_t>(flags.get_int("fill", 0));
    const std::int64_t length = flags.get_int("length", 0);
    if (length <= 0) {
      std::cerr << "write: --fill needs --length N\n";
      return 2;
    }
    data.assign(static_cast<std::size_t>(length), fill);
  } else {
    std::cerr << "write: provide --data STR, --in FILE, or --fill BYTE --length N\n";
    return 2;
  }
  auto client = daemon_client(flags);
  client.write(offset, data);
  report_trace_id(client);
  std::cout << "wrote " << data.size() << " bytes at offset " << offset << "\n";
  return 0;
}

int cmd_fail(const Flags& flags) {
  const std::int64_t disk = flags.get_int("disk", -1);
  if (disk < 0) {
    std::cerr << "fail: --disk D is required\n";
    return 2;
  }
  auto client = daemon_client(flags);
  client.fail_disk(static_cast<std::size_t>(disk));
  std::cout << "disk " << disk << " failed; rebuild starts online\n";
  return 0;
}

int cmd_stop(const Flags& flags) {
  daemon_client(flags).stop();
  std::cout << "stop requested\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  try {
    const Flags flags(argc - 1, argv + 1);
    oi::gf::set_kernel_by_name(flags.get_gf_kernel());
    // --trace-out/--metrics-out: observability files are flushed when the
    // session leaves scope, after the command has run.
    const oi::obs::Session obs(flags);
    int code = 2;
    if (command == "designs") {
      code = cmd_designs(flags);
    } else if (command == "plan") {
      code = cmd_plan(flags);
    } else if (command == "map") {
      code = cmd_map(flags);
    } else if (command == "recover") {
      code = cmd_recover(flags);
    } else if (command == "simulate") {
      code = cmd_simulate(flags);
    } else if (command == "tolerance") {
      code = cmd_tolerance(flags);
    } else if (command == "mttdl") {
      code = cmd_mttdl(flags);
    } else if (command == "mc") {
      code = cmd_mc(flags);
    } else if (command == "export") {
      code = cmd_export(flags);
    } else if (command == "top") {
      code = cmd_top(flags);
    } else if (command == "ping") {
      code = cmd_ping(flags);
    } else if (command == "status") {
      code = cmd_status(flags);
    } else if (command == "profile") {
      code = cmd_profile(flags);
    } else if (command == "read") {
      code = cmd_read(flags);
    } else if (command == "write") {
      code = cmd_write(flags);
    } else if (command == "fail") {
      code = cmd_fail(flags);
    } else if (command == "stop") {
      code = cmd_stop(flags);
    } else {
      return usage();
    }
    for (const std::string& name : flags.unused()) {
      std::cerr << "warning: unused flag --" << name << "\n";
    }
    return code;
  } catch (const std::exception& error) {
    std::cerr << "oiraidctl " << command << ": " << error.what() << "\n";
    return 1;
  }
}
